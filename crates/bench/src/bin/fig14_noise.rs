//! **Figure 14** — noise-sensitivity analysis of Rasengan.
//!
//! (a) ARG distribution under Pauli (depolarizing) noise swept over
//!     error rates 10⁻⁴…10⁻²: at 10⁻⁴ more than 99% of ARGs stay below
//!     0.025; the mean stays < 0.15 at 10⁻³.
//! (b) ARG under growing amplitude damping with a fixed background
//!     (1Q 0.035%, 2Q 0.875%): mild degradation to ~1.5%, then
//!     segment-failure collapse near 2%.

use rasengan_bench::report::fmt;
use rasengan_bench::{RunSettings, Table};
use rasengan_core::{Rasengan, RasenganConfig, ResilienceConfig};
use rasengan_problems::registry::{all_ids, benchmark, cases};
use rasengan_qsim::NoiseModel;

fn main() {
    let settings = RunSettings::from_args();
    let iterations = if settings.full { 60 } else { 15 };
    let case_count = if settings.full { 5 } else { 1 };

    // Sample problems across the five domains (first scale of each).
    let mut problems = Vec::new();
    for id in all_ids().into_iter().filter(|id| id.scale <= 2) {
        problems.push(benchmark(id));
        for p in cases(id, case_count - 1, settings.seed) {
            problems.push(p);
        }
    }

    // (a) Pauli error-rate sweep.
    let mut pauli = Table::new(
        "Figure 14a: ARG distribution vs Pauli error rate",
        vec!["error_rate", "mean_ARG", "p99_below_0.025", "fail_rate"],
    );
    for &rate in &[1e-4, 3e-4, 1e-3, 3e-3, 1e-2] {
        let mut args = Vec::new();
        let mut fails = 0usize;
        for (i, p) in problems.iter().enumerate() {
            let cfg = RasenganConfig::default()
                .with_seed(settings.seed + i as u64)
                .with_noise(NoiseModel::depolarizing(rate))
                .with_shots(512)
                .with_max_iterations(iterations);
            match Rasengan::new(cfg).solve(p) {
                Ok(out) => args.push(out.arg),
                Err(_) => fails += 1,
            }
        }
        let mean = args.iter().sum::<f64>() / args.len().max(1) as f64;
        let below = args.iter().filter(|a| **a < 0.025).count() as f64 / args.len().max(1) as f64;
        pauli.row(vec![
            format!("{rate:.0e}"),
            fmt(mean),
            fmt(below),
            fmt(fails as f64 / problems.len() as f64),
        ]);
        eprintln!("rate {rate:.0e}: mean ARG {}", fmt(mean));
    }
    pauli.print();
    let _ = pauli.save_csv("fig14a_pauli");
    let _ = pauli.save_json("BENCH_fig14a_pauli");

    // (b) amplitude-damping sweep over fixed background noise. Each
    // configuration runs twice: the plain solver (a dead segment aborts
    // the run, the paper's Fig. 14b collapse) and the resilient solver
    // (retry with escalated shots, then degrade past the segment), so
    // the table shows how much of the collapse the recovery ladder
    // absorbs.
    let background = NoiseModel::ibm_like(3.5e-4, 8.75e-3, 0.0).with_phase_damping(1e-4);
    let mut damping = Table::new(
        "Figure 14b: ARG vs amplitude damping (fixed background noise)",
        vec![
            "damping",
            "mean_ARG",
            "fail_rate",
            "resil_ARG",
            "resil_fail",
            "retries",
            "degraded",
        ],
    );
    for &gamma in &[0.0, 0.005, 0.010, 0.015, 0.020] {
        let mut args = Vec::new();
        let mut fails = 0usize;
        let mut resil_args = Vec::new();
        let mut resil_fails = 0usize;
        let mut retries = 0usize;
        let mut degraded = 0usize;
        for (i, p) in problems.iter().enumerate() {
            let cfg = RasenganConfig::default()
                .with_seed(settings.seed + 31 * i as u64)
                .with_noise(background.with_amplitude_damping(gamma))
                .with_shots(512)
                .with_max_iterations(iterations);
            match Rasengan::new(cfg.clone()).solve(p) {
                Ok(out) => args.push(out.arg),
                Err(_) => fails += 1,
            }
            match Rasengan::new(cfg.with_resilience(ResilienceConfig::recommended())).solve(p) {
                Ok(out) => {
                    retries += out.resilience.retries();
                    degraded += out.resilience.degradations();
                    resil_args.push(out.arg);
                }
                Err(_) => resil_fails += 1,
            }
        }
        let mean = |xs: &[f64]| {
            if xs.is_empty() {
                f64::INFINITY
            } else {
                xs.iter().sum::<f64>() / xs.len() as f64
            }
        };
        damping.row(vec![
            format!("{:.1}%", gamma * 100.0),
            fmt(mean(&args)),
            fmt(fails as f64 / problems.len() as f64),
            fmt(mean(&resil_args)),
            fmt(resil_fails as f64 / problems.len() as f64),
            retries.to_string(),
            degraded.to_string(),
        ]);
        eprintln!(
            "damping {:.1}%: mean ARG {} fails {} (resilient: {} fails {}, {} retries, {} degraded)",
            gamma * 100.0,
            fmt(mean(&args)),
            fails,
            fmt(mean(&resil_args)),
            resil_fails,
            retries,
            degraded
        );
    }
    damping.print();
    if let Ok(p) = damping.save_csv("fig14b_damping") {
        println!("saved: {}", p.display());
    }
    if let Ok(p) = damping.save_json("BENCH_fig14b_damping") {
        println!("saved: {}", p.display());
    }
}
