//! **Figure 15** — ablation of the optimization strategies on circuit
//! depth across the 20 benchmarks.
//!
//! Depth is measured as the CX cost of the deepest executable unit:
//! the whole chain without segmentation, one segment with it.
//! Expected shape (paper): opt 1 (simplification) ~9.8% average
//! reduction (ineffective on already-sparse F1/K1/G1), opt 2 (pruning)
//! ~67%, opt 3 (segmentation) a further ~82%.

use rasengan_bench::report::fmt;
use rasengan_bench::{RunSettings, Table};
use rasengan_core::{Rasengan, RasenganConfig};
use rasengan_problems::registry::{all_ids, benchmark};

fn main() {
    let settings = RunSettings::from_args();
    let mut table = Table::new(
        "Figure 15: circuit depth (CX) under incremental optimizations",
        vec![
            "bench",
            "none",
            "+opt1_simplify",
            "+opt2_prune",
            "+opt3_segment",
        ],
    );

    let mut reductions = [0.0f64; 3];
    let mut count = 0usize;

    for id in all_ids() {
        let problem = benchmark(id);
        let depth = |simplify: bool, prune: bool, segmented: bool| -> usize {
            let mut cfg = RasenganConfig::default().with_seed(settings.seed);
            cfg.simplify = simplify;
            cfg.prune = prune;
            cfg.early_stop = prune;
            cfg.segmented = segmented;
            let prep = Rasengan::new(cfg).prepare(&problem).expect("prepares");
            prep.stats.max_segment_cx_depth
        };
        let none = depth(false, false, false);
        let opt1 = depth(true, false, false);
        let opt2 = depth(true, true, false);
        let opt3 = depth(true, true, true);
        if none > 0 && opt1 > 0 && opt2 > 0 {
            reductions[0] += 1.0 - opt1 as f64 / none as f64;
            reductions[1] += 1.0 - opt2 as f64 / opt1 as f64;
            reductions[2] += 1.0 - opt3 as f64 / opt2 as f64;
            count += 1;
        }
        table.row(vec![
            id.to_string(),
            none.to_string(),
            opt1.to_string(),
            opt2.to_string(),
            opt3.to_string(),
        ]);
        eprintln!("{id}: {none} -> {opt1} -> {opt2} -> {opt3}");
    }

    table.print();
    println!(
        "average reductions: opt1 {}%, opt2 {}%, opt3 {}%",
        fmt(100.0 * reductions[0] / count as f64),
        fmt(100.0 * reductions[1] / count as f64),
        fmt(100.0 * reductions[2] / count as f64),
    );
    if let Ok(p) = table.save_csv("fig15_ablation_depth") {
        println!("saved: {}", p.display());
    }
}
