//! **Figure 17** — solution-space analysis of Hamiltonian pruning.
//!
//! For FLP, KPP, SCP, and GCP at scales 1–4, measures how much of the
//! feasible space is covered as a function of chain position, pruned vs
//! unpruned. Expected shape (paper): pruned chains reach full coverage
//! at a smaller fraction of the chain (e.g. 40.7% vs 73.6% on the
//! fourth scale, a 1.8× expansion speedup).

use rasengan_bench::report::fmt;
use rasengan_bench::{RunSettings, Table};
use rasengan_core::prune::{coverage_curve, ChainConfig};
use rasengan_core::{Rasengan, RasenganConfig};
use rasengan_problems::enumerate_feasible;
use rasengan_problems::registry::{benchmark, BenchmarkId, Domain};

fn main() {
    let settings = RunSettings::from_args();
    let _ = settings;
    let domains = [Domain::Flp, Domain::Kpp, Domain::Scp, Domain::Gcp];

    let mut table = Table::new(
        "Figure 17: chain fraction needed for full feasible-space coverage",
        vec![
            "bench",
            "#feasible",
            "unpruned_chain_len",
            "pruned_chain_len",
            "unpruned_frac",
            "pruned_frac",
            "speedup",
        ],
    );

    for domain in domains {
        for scale in 1..=4 {
            let id = BenchmarkId::new(domain, scale);
            let problem = benchmark(id);
            let feasible = enumerate_feasible(&problem).len();
            // Reuse the solver's basis pipeline (simplification with the
            // connectivity fallback guard).
            let prepared = Rasengan::new(RasenganConfig::default())
                .prepare(&problem)
                .expect("benchmark prepares");
            let basis = prepared.basis.clone();
            let seed = prepared.seed_label;

            let pruned_cfg = ChainConfig::default();
            let unpruned_cfg = ChainConfig {
                prune: false,
                early_stop: false,
                ..ChainConfig::default()
            };

            // Fraction of the *raw* chain consumed before reaching full
            // coverage.
            let frac_to_full = |cfg: &ChainConfig| -> (usize, f64) {
                let curve = coverage_curve(&basis, seed, feasible, cfg);
                let len = curve.len();
                let frac = curve
                    .iter()
                    .position(|p| p.covered_fraction >= 1.0)
                    .map(|i| (i + 1) as f64 / len as f64)
                    .unwrap_or(1.0);
                (len, frac)
            };
            let (len_u, frac_u) = frac_to_full(&unpruned_cfg);
            let (len_p, frac_p) = frac_to_full(&pruned_cfg);

            // Speedup in absolute operators to full coverage.
            let ops_u = (frac_u * len_u as f64).max(1.0);
            let ops_p = (frac_p * len_p as f64).max(1.0);
            table.row(vec![
                id.to_string(),
                feasible.to_string(),
                len_u.to_string(),
                len_p.to_string(),
                fmt(frac_u),
                fmt(frac_p),
                fmt(ops_u / ops_p),
            ]);
            eprintln!(
                "{id}: unpruned {len_u} ops ({:.0}%), pruned {len_p} ops ({:.0}%)",
                frac_u * 100.0,
                frac_p * 100.0
            );
        }
    }

    table.print();
    if let Ok(p) = table.save_csv("fig17_pruning") {
        println!("saved: {}", p.display());
    }
}
