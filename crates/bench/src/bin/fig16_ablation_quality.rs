//! **Figure 16** — ablation of the optimization strategies on ARG and
//! in-constraints rate, on the noise-free simulator and under device
//! noise.
//!
//! Expected shape (paper): opt 1 barely moves ARG (1.04×), opt 2 helps
//! 1.18×/1.37× (sim/hardware), opt 3's segmentation + purification is
//! the big win (2.43× ARG, 303× on hardware; in-constraints rate jumps
//! from single digits to 100%).

use rasengan_bench::report::fmt;
use rasengan_bench::{RunSettings, Table};
use rasengan_core::{Rasengan, RasenganConfig};
use rasengan_problems::registry::{benchmark, BenchmarkId};
use rasengan_qsim::{Device, NoiseModel};

fn main() {
    let settings = RunSettings::from_args();
    let benches = ["F1", "K1", "J1"];
    let iterations = if settings.full { 100 } else { 20 };

    let variants: [(&str, bool, bool, bool, bool); 4] = [
        ("none", false, false, false, false),
        ("+opt1", true, false, false, false),
        ("+opt2", true, true, false, false),
        ("+opt3", true, true, true, true),
    ];
    let envs: [(&str, Option<NoiseModel>); 3] = [
        ("simulator", None),
        ("IBM-Kyiv", Some(Device::ibm_kyiv().noise)),
        ("IBM-Brisbane", Some(Device::ibm_brisbane().noise)),
    ];

    let mut table = Table::new(
        "Figure 16: ARG / in-constraints rate under incremental optimizations",
        vec!["env", "variant", "avg_ARG", "avg_in_constraints"],
    );

    for (env_name, noise) in envs {
        for (vname, simplify, prune, segmented, purify) in variants {
            let mut sum_arg = 0.0;
            let mut sum_rate = 0.0;
            for (i, b) in benches.iter().enumerate() {
                let p = benchmark(BenchmarkId::parse(b).unwrap());
                let mut cfg = RasenganConfig::default()
                    .with_seed(settings.seed + i as u64)
                    .with_max_iterations(iterations);
                cfg.simplify = simplify;
                cfg.prune = prune;
                cfg.early_stop = prune;
                cfg.segmented = segmented;
                cfg.purify = purify;
                if let Some(nm) = noise {
                    cfg = cfg.with_noise(nm).with_shots(settings.shots());
                }
                match Rasengan::new(cfg).solve(&p) {
                    Ok(out) => {
                        sum_arg += out.arg;
                        // Without purification the relevant rate is the
                        // raw one; with it the output rate (1.0).
                        sum_rate += if purify {
                            out.in_constraints_rate
                        } else {
                            out.raw_in_constraints_rate
                        };
                    }
                    Err(_) => {
                        sum_arg += 1e4;
                    }
                }
            }
            let n = benches.len() as f64;
            table.row(vec![
                env_name.to_string(),
                vname.to_string(),
                fmt(sum_arg / n),
                fmt(sum_rate / n),
            ]);
            eprintln!("{env_name} {vname}: arg {}", fmt(sum_arg / n));
        }
    }

    table.print();
    if let Ok(p) = table.save_csv("fig16_ablation_quality") {
        println!("saved: {}", p.display());
    }
}
