//! Ablations of the repo's own design decisions (DESIGN.md §4) — not a
//! paper figure, but the evidence behind the engineering choices:
//!
//! 1. Sparse analytic backend vs dense gate-circuit simulation of the
//!    same transition chain (accuracy is exact for both — this table
//!    reports the *time* ratio; see also `cargo bench kernels`).
//! 2. Largest-remainder shot apportionment vs naive floor rounding
//!    (floor loses shots; LR conserves them exactly).
//! 3. Purification before vs after shot redistribution (purifying
//!    first redirects wasted shots to feasible inputs).

use rasengan_bench::report::fmt;
use rasengan_bench::{RunSettings, Table};
use rasengan_core::{apportion_shots, problem_basis, Rasengan, RasenganConfig};
use rasengan_problems::registry::{benchmark, BenchmarkId};
use rasengan_qsim::sparse::label_from_bits;
use rasengan_qsim::synth::tau_circuit;
use rasengan_qsim::{DenseState, SparseState, Transition};
use std::time::Instant;

fn main() {
    let settings = RunSettings::from_args();

    // --- 1. backend timing ------------------------------------------------
    let mut backend = Table::new(
        "Ablation 1: sparse vs dense transition-chain execution (µs/run)",
        vec!["bench", "sparse_us", "dense_us", "speedup"],
    );
    for name in ["F1", "J1", "S1"] {
        let p = benchmark(BenchmarkId::parse(name).unwrap());
        let basis = problem_basis(&p).unwrap();
        let seed = label_from_bits(p.initial_feasible().unwrap());
        let n = p.n_vars();
        let reps = 200;

        let t0 = Instant::now();
        for _ in 0..reps {
            let mut s = SparseState::basis_state(n, seed);
            for u in &basis {
                s.apply_transition(&Transition::from_u(u), 0.6);
            }
        }
        let sparse_us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;

        let circuits: Vec<_> = basis.iter().map(|u| tau_circuit(u, 0.6, n)).collect();
        let t0 = Instant::now();
        for _ in 0..reps {
            let mut s = DenseState::basis_state(n, seed as u64);
            for c in &circuits {
                s.run(c);
            }
        }
        let dense_us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;

        backend.row(vec![
            name.to_string(),
            fmt(sparse_us),
            fmt(dense_us),
            fmt(dense_us / sparse_us),
        ]);
    }
    backend.print();
    let _ = backend.save_csv("ablation_backend");

    // --- 2. apportionment rounding ----------------------------------------
    let mut rounding = Table::new(
        "Ablation 2: largest-remainder vs floor apportionment (shots lost)",
        vec!["states", "budget", "floor_lost", "largest_remainder_lost"],
    );
    for &(k, budget) in &[(3usize, 100usize), (7, 1024), (31, 1024), (63, 4096)] {
        let probs: Vec<f64> = (1..=k).map(|i| 1.0 / i as f64).collect();
        let sum: f64 = probs.iter().sum();
        let floor_total: usize = probs
            .iter()
            .map(|p| (p / sum * budget as f64).floor() as usize)
            .sum();
        let lr_total: usize = apportion_shots(&probs, budget).iter().sum();
        rounding.row(vec![
            k.to_string(),
            budget.to_string(),
            (budget - floor_total).to_string(),
            (budget - lr_total).to_string(),
        ]);
    }
    rounding.print();
    let _ = rounding.save_csv("ablation_rounding");

    // --- 3. purification placement ----------------------------------------
    // Compare the default (purify between segments, i.e. before
    // redistribution) against purifying only at the very end, under
    // identical noise.
    let mut placement = Table::new(
        "Ablation 3: purify between segments vs only at the end",
        vec![
            "bench",
            "between_ARG",
            "final_only_ARG",
            "between_raw_rate",
            "final_raw_rate",
        ],
    );
    for name in ["F1", "J1"] {
        let p = benchmark(BenchmarkId::parse(name).unwrap());
        let noise = rasengan_qsim::Device::ibm_kyiv().noise;
        let iters = if settings.full { 40 } else { 12 };

        let between = Rasengan::new(
            RasenganConfig::default()
                .with_seed(settings.seed)
                .with_noise(noise)
                .with_shots(settings.shots())
                .with_max_iterations(iters),
        )
        .solve(&p);

        // "Final only": disable segmentation so there is no intermediate
        // purification point; the single purification happens at the end.
        let final_only = {
            let mut cfg = RasenganConfig::default()
                .with_seed(settings.seed)
                .with_noise(noise)
                .with_shots(settings.shots())
                .with_max_iterations(iters);
            cfg.segmented = false;
            Rasengan::new(cfg).solve(&p)
        };

        let cell = |r: &Result<rasengan_core::Outcome, _>,
                    f: fn(&rasengan_core::Outcome) -> f64| match r {
            Ok(o) => fmt(f(o)),
            Err(_) => "fail".to_string(),
        };
        placement.row(vec![
            name.to_string(),
            cell(&between, |o| o.arg),
            cell(&final_only, |o| o.arg),
            cell(&between, |o| o.raw_in_constraints_rate),
            cell(&final_only, |o| o.raw_in_constraints_rate),
        ]);
    }
    placement.print();
    if let Ok(p) = placement.save_csv("ablation_purify_placement") {
        println!("saved: {}", p.display());
    }
}
