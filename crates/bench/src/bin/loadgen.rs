//! Load generator for the solve service (PR 3 acceptance experiment).
//!
//! Starts an in-process server and drives three arms:
//!
//! * **cold** — distinct `(problem, seed)` requests, every one a cache
//!   miss: the steady-state solve cost.
//! * **warm** — the same request repeated: after the first miss every
//!   response comes from the result cache. The arm checks the cached
//!   `result` section is *byte-identical* to the cold one and that the
//!   warm median latency is ≥10× below the cold median.
//! * **saturation** — a deliberately tiny server (one worker, queue
//!   capacity one) flooded concurrently: some requests must be shed
//!   with a structured `BUSY` response, and every request must get
//!   *some* well-formed answer (no panic, no indefinite block).
//! * **warm-restart** — the main server runs with `--state-dir`; after
//!   it shuts down, a fresh server on the same directory replays the
//!   cold corpus. Measures restart-to-warm time and the first-100-
//!   request warm hit rate (must be ≥90%), and checks disk-served
//!   `result` bytes are byte-identical to the original cold solves.
//!
//! Reports throughput and p50/p95/p99 per arm and saves
//! `BENCH_loadgen.{csv,json}` plus the warm-restart metrics as
//! `BENCH_persist.{csv,json}` under `target/rasengan-reports/`.
//!
//! Passing `--nodes N` runs the multi-node fabric arm instead: an
//! in-process N-node cluster (consistent-hash routing, gossip
//! membership) fields the cold corpus with requests entering
//! round-robin at every node, every `result` is asserted
//! byte-identical to a single-node baseline, and throughput per node
//! count lands in `BENCH_fabric.json`. Under `--full` the 2-node arm
//! must clear a ≥1.6× throughput floor.
//!
//! Passing `--replay` runs the deterministic workload-replay mode
//! instead (see [`rasengan_bench::replay`]): a seeded manifest of
//! Poisson arrivals mixed over the full 32-id corpus is executed twice
//! against fresh servers, every pass-2 `result` section is asserted
//! byte-identical to pass 1, and `BENCH_replay.json` plus the manifest
//! itself land under `target/rasengan-reports/`.

use rasengan_bench::replay::{manifest, wire_body, ReplayConfig};
use rasengan_bench::{report::fmt, RunSettings, Table};
use rasengan_obs::metrics::{try_global, Histogram};
use rasengan_problems::io::write_problem;
use rasengan_problems::registry::{benchmark, BenchmarkId};
use rasengan_serve::{
    serve, submit, submit_trickled, FabricConfig, HeldConnection, ReplyStatus, ServeConfig,
    SolveRequest, EVENT_LOOP_SUPPORTED,
};
use std::time::{Duration, Instant};

/// An obs histogram percentile, in milliseconds (recorded in micros).
fn hist_ms(hist: &Histogram, q: f64) -> f64 {
    hist.percentile(q) as f64 / 1000.0
}

/// Nearest-rank percentile of an unsorted sample, in milliseconds.
/// An empty arm (every request shed, or a filter that matched nothing)
/// reports 0 rather than aborting the whole bench run.
fn percentile(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

fn request_for(id: &str, seed: u64, settings: &RunSettings) -> SolveRequest {
    let problem = benchmark(BenchmarkId::parse(id).expect("registry id"));
    // Budgets large enough that a cold solve dwarfs the TCP round
    // trip; otherwise the warm-vs-cold comparison measures the
    // network, not the cache.
    SolveRequest::new(write_problem(&problem))
        .with_seed(seed)
        .with_shots(1024)
        .with_iterations(if settings.full { 150 } else { 60 })
}

/// The `--replay` arm: generate a deterministic manifest from the run
/// seed, execute it twice against fresh servers, and assert the two
/// passes return byte-identical `result` sections request by request.
fn run_replay(settings: &RunSettings) {
    let cfg = ReplayConfig::new(settings.seed, settings.full);
    let plan = manifest(&cfg);
    // Acceptance: regenerating the manifest from the same seed must
    // reproduce the request sequence byte for byte.
    assert_eq!(
        plan.to_json(),
        manifest(&cfg).to_json(),
        "manifest regeneration must be byte-identical"
    );
    // Each draw travels in its manifest-resolved wire format: the body
    // is the problem exported to that format and the request carries
    // the matching `format` header, so the served mixture exercises
    // the whole ingest surface, not just the native parser.
    let requests: Vec<SolveRequest> = plan
        .draws
        .iter()
        .map(|d| {
            SolveRequest::new(wire_body(&d.id, d.format))
                .with_seed(d.solver_seed)
                .with_shots(d.shots)
                .with_iterations(d.iterations)
                .with_format(d.format)
        })
        .collect();
    let distinct: std::collections::HashSet<&str> =
        plan.draws.iter().map(|d| d.id.as_str()).collect();
    let mut format_mix: std::collections::BTreeMap<&str, usize> = Default::default();
    for d in &plan.draws {
        *format_mix.entry(d.format.token()).or_default() += 1;
    }
    println!(
        "replay: seed {}, {} requests over {} distinct ids, rate {}/s, formats {:?}",
        cfg.seed,
        plan.draws.len(),
        distinct.len(),
        plan.rate_per_s,
        format_mix
    );
    assert!(
        format_mix.len() >= 2,
        "the replay mixture must exercise several wire formats"
    );

    let mut table = Table::new(
        "replay: deterministic workload replay",
        vec![
            "pass",
            "requests",
            "ok",
            "distinct_ids",
            "throughput/s",
            "p50_ms",
            "p95_ms",
            "p99_ms",
        ],
    );
    let mut passes: Vec<Vec<String>> = Vec::new();
    for pass in 1..=2 {
        // A fresh server per pass: pass 2 re-solves everything from
        // scratch, so identical bytes prove solver determinism, not
        // cache retention.
        let mut config = ServeConfig::default();
        if let Some(threads) = settings.threads {
            config = config.with_solver_threads(threads);
        }
        let server = serve(config).expect("bind ephemeral port");
        let addr = server.addr();
        let started = Instant::now();
        let mut ms = Vec::new();
        let mut results = Vec::new();
        let mut last_arrival = 0.0;
        for (draw, request) in plan.draws.iter().zip(&requests) {
            // Honor the manifest's arrival schedule, with each gap
            // capped so a slow tail can't stall the bench. Timing never
            // affects results — only the (problem, seed, knobs) tuple
            // does — so the cap preserves determinism.
            let gap_ms = (draw.arrival_ms - last_arrival).min(20.0);
            last_arrival = draw.arrival_ms;
            std::thread::sleep(Duration::from_micros((gap_ms * 1000.0) as u64));
            let sent = Instant::now();
            let reply = submit(addr, request).expect("replay submit");
            ms.push(sent.elapsed().as_secs_f64() * 1000.0);
            assert_eq!(
                reply.status,
                ReplyStatus::Ok,
                "replay solve failed for {} (pass {pass})",
                draw.id
            );
            results.push(reply.section("result").expect("result section").to_string());
        }
        let wall = started.elapsed().as_secs_f64();
        server.shutdown();
        table.row(vec![
            format!("pass-{pass}"),
            plan.draws.len().to_string(),
            results.len().to_string(),
            distinct.len().to_string(),
            fmt(plan.draws.len() as f64 / wall),
            fmt(percentile(&mut ms, 0.50)),
            fmt(percentile(&mut ms, 0.95)),
            fmt(percentile(&mut ms, 0.99)),
        ]);
        passes.push(results);
    }
    for (i, (a, b)) in passes[0].iter().zip(&passes[1]).enumerate() {
        assert_eq!(
            a, b,
            "replay request #{i} ({}) must produce byte-identical results across passes",
            plan.draws[i].id
        );
    }
    println!(
        "replay: {} requests byte-identical across both passes",
        passes[0].len()
    );

    table.print();
    if let Ok(p) = table.save_csv("replay") {
        println!("saved: {}", p.display());
    }
    if let Ok(p) = table.save_json("BENCH_replay") {
        println!("saved: {}", p.display());
    }
    let dir = std::path::PathBuf::from("target/rasengan-reports");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join("replay_manifest.json");
        if std::fs::write(&path, plan.to_json()).is_ok() {
            println!("saved: {}", path.display());
        }
    }
}

/// Soft open-file limit, from `/proc/self/limits` (Linux). `None` when
/// unreadable — callers fall back to a conservative guess.
fn fd_soft_limit() -> Option<usize> {
    let limits = std::fs::read_to_string("/proc/self/limits").ok()?;
    let line = limits.lines().find(|l| l.starts_with("Max open files"))?;
    line.split_whitespace().nth(3)?.parse().ok()
}

/// The `--connections N` arm: how many concurrent connections each
/// front end actually sustains, at equal worker count.
///
/// Per level C ∈ {64, 256, 1024} (capped at N and at fd headroom) and
/// per front end, the arm parks C connections mid-request (verb line
/// sent, headers withheld), runs a measurement window of fast submits
/// plus a trickled slow-client mix, then finishes every parked
/// connection in admission order. A connection counts as *sustained*
/// when the server still honors it end-to-end — the finish gets an
/// `OK` whose `result` bytes match the in-process solve. On the
/// threaded front end parked connections eat the admission queue and
/// the worker pool, so everything past `queue + workers` is shed with
/// `BUSY` at park time; the reactor just keeps C parsers buffering and
/// sustains the lot. The arm asserts the reactor's best sustained
/// count is ≥4× the threaded front end's, saves `BENCH_evloop.json`,
/// and checks every `OK` reply byte-identical across front ends and to
/// the in-process baseline.
fn run_evloop(settings: &RunSettings, max_conns: usize) {
    use rasengan_core::Rasengan;
    use rasengan_serve::render_outcome;

    // Every parked connection costs two fds in this process (client +
    // server end), plus server/runtime overhead.
    let fd_cap = fd_soft_limit().unwrap_or(1024).saturating_sub(512) / 2;
    let mut levels: Vec<usize> = [64usize, 256, 1024]
        .into_iter()
        .filter(|c| *c <= max_conns)
        .collect();
    if levels.is_empty() {
        levels.push(max_conns.max(1));
    }
    for dropped in levels.iter().filter(|c| **c > fd_cap) {
        println!("evloop: dropping C={dropped}: fd soft limit allows only {fd_cap}");
    }
    levels.retain(|c| *c <= fd_cap);
    assert!(!levels.is_empty(), "fd limit too low for any level");

    let workers = 4usize;
    let window = if settings.full {
        Duration::from_secs(2)
    } else {
        Duration::from_secs(1)
    };

    // One request everywhere: front-end capacity is the quantity under
    // test, so after the first cold solve every reply is a cache hit
    // and the solver never becomes the bottleneck. One baseline then
    // checks every OK reply, from either front end, byte-for-byte.
    let problem = benchmark(BenchmarkId::parse("F2").expect("registry id"));
    let request = SolveRequest::new(write_problem(&problem))
        .with_seed(7)
        .with_shots(128)
        .with_iterations(8);
    let mut config = request.config();
    if let Some(threads) = settings.threads {
        config = config.with_threads(threads);
    }
    let baseline = render_outcome(&Rasengan::new(config).solve(&problem).expect("baseline"));
    let rendered = request.render();
    let verb_end = rendered.find('\n').expect("verb line") + 1;
    let (prefix, rest) = rendered.split_at(verb_end);

    let fronts: &[(&str, bool)] = if EVENT_LOOP_SUPPORTED {
        &[("reactor", true), ("threaded", false)]
    } else {
        println!("evloop: reactor unsupported on this target; threaded only, no ratio gate");
        &[("threaded", false)]
    };

    let mut table = Table::new(
        "evloop: sustained connections per front end",
        vec![
            "front_end",
            "connections",
            "sustained",
            "fast_ok",
            "fast_busy",
            "trickle_ok",
            "conns_open",
            "throughput/s",
            "p50_ms",
            "p95_ms",
            "p99_ms",
        ],
    );
    let mut best: std::collections::HashMap<&str, usize> = Default::default();

    for &(front, event_loop) in fronts {
        for &level in &levels {
            // Equal worker count and queue on both front ends; the
            // default 30s io timeout comfortably exceeds the arm, so
            // parked connections die by capacity, never by deadline.
            let server = serve(
                ServeConfig::default()
                    .with_event_loop(event_loop)
                    .with_workers(workers)
                    .with_queue_capacity(32),
            )
            .expect("bind ephemeral port");
            let addr = server.addr();

            // Park phase: C connections frozen after the verb line.
            let mut parked: Vec<Option<HeldConnection>> = (0..level)
                .map(|_| HeldConnection::open(addr, prefix.as_bytes()).ok())
                .collect();
            let parked_alive = parked.iter().filter(|c| c.is_some()).count();

            // Measurement window: a trickled slow-client mix in the
            // background, fast submits in the foreground.
            let (fast_ok, fast_busy, mut fast_ms, trickle_ok, wall) = std::thread::scope(|scope| {
                let tricklers: Vec<_> = (0..4)
                    .map(|_| {
                        let request = &request;
                        scope.spawn(move || {
                            submit_trickled(addr, request, 8, Duration::from_millis(20))
                                .map(|r| (r.status, r.section("result").map(str::to_string)))
                        })
                    })
                    .collect();
                let started = Instant::now();
                let mut ok = 0usize;
                let mut busy = 0usize;
                let mut ms = Vec::new();
                while started.elapsed() < window {
                    let sent = Instant::now();
                    match submit(addr, &request) {
                        Ok(reply) if reply.status == ReplyStatus::Ok => {
                            assert_eq!(
                                reply.section("result").unwrap(),
                                baseline,
                                "fast-mix reply must match the in-process solve ({front})"
                            );
                            ok += 1;
                            ms.push(sent.elapsed().as_secs_f64() * 1000.0);
                        }
                        Ok(reply) if reply.status == ReplyStatus::Busy => busy += 1,
                        _ => {}
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                let wall = started.elapsed().as_secs_f64();
                // A slow client counts only when it was actually
                // served, byte-for-byte; a BUSY shed or a reset
                // mid-trickle (the threaded path under load) is
                // not a sustained outcome.
                let trickle_ok = tricklers
                    .into_iter()
                    .filter_map(|h| h.join().ok())
                    .filter(|outcome| {
                        matches!(
                            outcome,
                            Ok((ReplyStatus::Ok, Some(body))) if *body == baseline
                        )
                    })
                    .count();
                (ok, busy, ms, trickle_ok, wall)
            });
            let conns_open = server.stats().conns_open;

            // Finish phase, in admission order (the legacy queue is
            // FIFO, so bodies arrive exactly as workers reach them).
            let mut sustained = 0usize;
            for conn in parked.iter_mut() {
                let Some(mut held) = conn.take() else {
                    continue;
                };
                let _ = held.set_io_timeout(Duration::from_secs(10));
                if let Ok(reply) = held.finish(rest.as_bytes()) {
                    if reply.status == ReplyStatus::Ok {
                        assert_eq!(
                            reply.section("result").unwrap(),
                            baseline,
                            "sustained reply must match the in-process solve ({front})"
                        );
                        sustained += 1;
                    }
                }
            }
            server.shutdown();

            println!(
                "evloop {front} C={level}: parked {parked_alive}, sustained {sustained}, \
                 fast {fast_ok} ok / {fast_busy} busy, trickle {trickle_ok}/4, \
                 conns_open {conns_open}"
            );
            let entry = best.entry(front).or_default();
            *entry = (*entry).max(sustained);
            table.row(vec![
                front.into(),
                level.to_string(),
                sustained.to_string(),
                fast_ok.to_string(),
                fast_busy.to_string(),
                trickle_ok.to_string(),
                conns_open.to_string(),
                fmt(fast_ok as f64 / wall),
                fmt(percentile(&mut fast_ms, 0.50)),
                fmt(percentile(&mut fast_ms, 0.95)),
                fmt(percentile(&mut fast_ms, 0.99)),
            ]);
        }
    }

    table.print();
    if let Ok(p) = table.save_csv("evloop") {
        println!("saved: {}", p.display());
    }
    if let Ok(p) = table.save_json("BENCH_evloop") {
        println!("saved: {}", p.display());
    }

    if EVENT_LOOP_SUPPORTED {
        let reactor = best.get("reactor").copied().unwrap_or(0);
        let threaded = best.get("threaded").copied().unwrap_or(0).max(1);
        let ratio = reactor as f64 / threaded as f64;
        println!(
            "evloop: reactor sustained {reactor}, threaded sustained {threaded} ({ratio:.1}x)"
        );
        assert!(
            ratio >= 4.0,
            "the reactor must sustain >=4x the threaded front end's connections \
             (got {reactor} vs {threaded})"
        );
    }
}

/// Submits `corpus` request indices round-robin over `addrs` from
/// `clients` threads and returns `(index, result_bytes)` pairs plus the
/// wall-clock seconds the whole sweep took. Panics on any non-OK reply.
fn fabric_sweep(
    addrs: &[std::net::SocketAddr],
    requests: &[SolveRequest],
    clients: usize,
) -> (Vec<(usize, String)>, f64) {
    let started = Instant::now();
    let results: Vec<(usize, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for idx in (client..requests.len()).step_by(clients) {
                        // Entry node rotates with the request index, so
                        // every node fields both owned and forwarded
                        // work.
                        let addr = addrs[idx % addrs.len()];
                        let reply = submit(addr, &requests[idx]).expect("fabric submit");
                        assert_eq!(
                            reply.status,
                            ReplyStatus::Ok,
                            "fabric solve failed for request #{idx}"
                        );
                        out.push((idx, reply.section("result").expect("result").to_string()));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    (results, started.elapsed().as_secs_f64())
}

/// The `--nodes N` arm: an in-process N-node fabric versus a single
/// node on the same corpus.
///
/// One single-node server first solves the whole corpus — that is both
/// the throughput baseline and the byte-identity oracle. Then N
/// fabric-joined servers (consistent-hash routing, gossip membership)
/// field the same corpus with requests entering round-robin at every
/// node, so roughly (N-1)/N of them arrive at a non-owner and cross
/// the wire. Every `result` section must be byte-identical to the
/// single-node solve regardless of entry node. Saves
/// `BENCH_fabric.{csv,json}`; under `--full` the 2-node arm must clear
/// a ≥1.6× throughput floor over the baseline (fast mode records the
/// ratio without gating, since CI containers may have a single CPU).
fn run_fabric(settings: &RunSettings, nodes: usize) {
    assert!(
        (2..=8).contains(&nodes),
        "--nodes wants 2..=8 (got {nodes})"
    );
    let ids = ["F2", "J2", "S2", "K2", "G2"];
    let seeds_per_id: u64 = if settings.full { 6 } else { 2 };
    let clients = 4usize;
    let mut labels = Vec::new();
    let mut requests = Vec::new();
    for id in ids {
        for seed in 0..seeds_per_id {
            labels.push(format!("{id}/{seed}"));
            requests.push(request_for(id, seed, settings));
        }
    }

    let mut table = Table::new(
        "fabric: multi-node throughput and byte-identity",
        vec![
            "nodes",
            "requests",
            "ok",
            "mismatches",
            "forwards",
            "remote_hits",
            "ring_version",
            "throughput/s",
            "speedup",
            "p50_ms",
        ],
    );

    // --- single-node baseline: the byte-identity oracle.
    let mut config = ServeConfig::default();
    if let Some(threads) = settings.threads {
        config = config.with_solver_threads(threads);
    }
    let baseline_server = serve(config).expect("bind ephemeral port");
    let (mut baseline, baseline_wall) = fabric_sweep(&[baseline_server.addr()], &requests, clients);
    baseline.sort_by_key(|(idx, _)| *idx);
    let baseline_tps = requests.len() as f64 / baseline_wall;
    baseline_server.shutdown();
    table.row(vec![
        "1".into(),
        requests.len().to_string(),
        baseline.len().to_string(),
        "0".into(),
        "0".into(),
        "0".into(),
        "0".into(),
        fmt(baseline_tps),
        fmt(1.0),
        fmt(baseline_wall * 1000.0 / requests.len() as f64),
    ]);

    // --- N-node cluster: node i seeds its peer list with every node
    // bound before it; gossip closes the rest of the mesh.
    let mut servers = Vec::new();
    let mut addrs: Vec<std::net::SocketAddr> = Vec::new();
    for i in 0..nodes {
        let fabric = FabricConfig::new(format!("loadgen-n{i}"))
            .with_seed(settings.seed + i as u64)
            .with_peers(addrs.iter().map(|a| a.to_string()).collect())
            .with_heartbeat(Duration::from_millis(50));
        let mut config = ServeConfig::default().with_fabric(fabric);
        if let Some(threads) = settings.threads {
            config = config.with_solver_threads(threads);
        }
        let server = serve(config).expect("bind ephemeral port");
        addrs.push(server.addr());
        servers.push(server);
    }
    // Wait for the mesh to converge: every node must count all N
    // members (self included) alive before the sweep, or early
    // requests would be routed on partial rings (correct, but noisy
    // for the benchmark).
    let deadline = Instant::now() + Duration::from_secs(10);
    while servers
        .iter()
        .any(|s| (s.stats().fabric.members_alive as usize) < nodes)
    {
        assert!(
            Instant::now() < deadline,
            "fabric membership did not converge within 10s"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let (mut cluster, cluster_wall) = fabric_sweep(&addrs, &requests, clients);
    cluster.sort_by_key(|(idx, _)| *idx);
    let mut mismatches = 0usize;
    for ((idx, bytes), (_, expected)) in cluster.iter().zip(&baseline) {
        if bytes != expected {
            mismatches += 1;
            println!("fabric: BYTE MISMATCH on {}", labels[*idx]);
        }
    }
    let mut forwards = 0u64;
    let mut remote_hits = 0u64;
    let mut ring_version = 0u64;
    for server in &servers {
        let fabric = server.stats().fabric;
        forwards += fabric.forwards_out;
        remote_hits += fabric.remote_hits;
        ring_version = ring_version.max(fabric.ring_version);
    }
    for server in servers {
        server.shutdown();
    }
    let cluster_tps = requests.len() as f64 / cluster_wall;
    let speedup = cluster_tps / baseline_tps;
    table.row(vec![
        nodes.to_string(),
        requests.len().to_string(),
        cluster.len().to_string(),
        mismatches.to_string(),
        forwards.to_string(),
        remote_hits.to_string(),
        ring_version.to_string(),
        fmt(cluster_tps),
        fmt(speedup),
        fmt(cluster_wall * 1000.0 / requests.len() as f64),
    ]);

    table.print();
    if let Ok(p) = table.save_csv("fabric") {
        println!("saved: {}", p.display());
    }
    if let Ok(p) = table.save_json("BENCH_fabric") {
        println!("saved: {}", p.display());
    }

    assert_eq!(
        mismatches, 0,
        "fabric replies must be byte-identical to the single-node solve"
    );
    assert!(
        forwards > 0,
        "round-robin entry must forward at least one request"
    );
    println!(
        "fabric: {} requests over {nodes} nodes, {forwards} forwarded, \
         speedup {:.2}x vs single node",
        requests.len(),
        speedup
    );
    if settings.full && nodes == 2 {
        assert!(
            speedup >= 1.6,
            "2-node fabric must reach >=1.6x single-node throughput (got {speedup:.2}x)"
        );
    }
}

fn main() {
    let settings = RunSettings::from_args();
    if std::env::args().any(|a| a == "--replay") {
        run_replay(&settings);
        return;
    }
    {
        let args: Vec<String> = std::env::args().collect();
        if let Some(i) = args.iter().position(|a| a == "--nodes") {
            let nodes = args
                .get(i + 1)
                .and_then(|s| s.parse().ok())
                .expect("--nodes N");
            run_fabric(&settings, nodes);
            return;
        }
    }
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--connections") {
        let max_conns = args
            .get(i + 1)
            .and_then(|s| s.parse().ok())
            .expect("--connections N");
        run_evloop(&settings, max_conns);
        return;
    }
    let repeats = if settings.full { 60 } else { 20 };
    let ids = ["F2", "J2", "S2", "K2", "G2"];
    let seeds_per_id: u64 = if settings.full { 6 } else { 2 };

    let mut table = Table::new(
        "loadgen: served solve throughput and latency",
        vec![
            "arm",
            "requests",
            "ok",
            "busy",
            "error",
            "throughput/s",
            "p50_ms",
            "p95_ms",
            "p99_ms",
        ],
    );

    // The main server persists everything it computes, so the
    // warm-restart arm can replay the cold corpus from disk later.
    let state_dir =
        std::env::temp_dir().join(format!("rasengan-loadgen-state-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);
    let server =
        serve(ServeConfig::default().with_state_dir(&state_dir)).expect("bind ephemeral port");
    let addr = server.addr();

    // Client-side latency histogram (obs log-bucketed, micros): every
    // request from every arm lands here, and its percentiles are
    // reported next to the exact nearest-rank ones.
    let mut client_hist = Histogram::new();

    // --- cold arm: every request is a fresh (problem, seed) pair.
    let mut cold_ms = Vec::new();
    let mut cold_results = Vec::new();
    let cold_started = Instant::now();
    for id in ids {
        for seed in 0..seeds_per_id {
            let request = request_for(id, seed, &settings);
            let started = Instant::now();
            let reply = submit(addr, &request).expect("cold submit");
            client_hist.record(started.elapsed().as_micros() as u64);
            cold_ms.push(started.elapsed().as_secs_f64() * 1000.0);
            assert_eq!(reply.status, ReplyStatus::Ok, "cold solve failed");
            let service = reply.json("service").expect("service section");
            assert_ne!(
                service.get("cache").and_then(|c| c.as_str()),
                Some("hit"),
                "cold arm must not hit the result cache"
            );
            cold_results.push((id, seed, reply.section("result").unwrap().to_string()));
        }
    }
    let cold_wall = cold_started.elapsed().as_secs_f64();
    let cold_n = cold_ms.len();
    table.row(vec![
        "cold".into(),
        cold_n.to_string(),
        cold_n.to_string(),
        "0".into(),
        "0".into(),
        fmt(cold_n as f64 / cold_wall),
        fmt(percentile(&mut cold_ms, 0.50)),
        fmt(percentile(&mut cold_ms, 0.95)),
        fmt(percentile(&mut cold_ms, 0.99)),
    ]);

    // --- warm arm: one request repeated; all but the first round hit.
    let warm_request = request_for("F2", 0, &settings);
    let baseline = cold_results
        .iter()
        .find(|(id, seed, _)| *id == "F2" && *seed == 0)
        .map(|(_, _, result)| result.clone())
        .expect("cold arm covered F2 seed 0");
    let mut warm_ms = Vec::new();
    let warm_started = Instant::now();
    for _ in 0..repeats {
        let started = Instant::now();
        let reply = submit(addr, &warm_request).expect("warm submit");
        client_hist.record(started.elapsed().as_micros() as u64);
        warm_ms.push(started.elapsed().as_secs_f64() * 1000.0);
        assert_eq!(reply.status, ReplyStatus::Ok);
        let service = reply.json("service").expect("service section");
        assert_eq!(
            service.get("cache").and_then(|c| c.as_str()),
            Some("hit"),
            "warm arm must hit the result cache"
        );
        assert_eq!(
            reply.section("result").unwrap(),
            baseline,
            "cached result must be byte-identical to the cold solve"
        );
    }
    let warm_wall = warm_started.elapsed().as_secs_f64();
    let warm_p50 = percentile(&mut warm_ms, 0.50);
    let cold_p50 = percentile(&mut cold_ms, 0.50);
    table.row(vec![
        "warm".into(),
        repeats.to_string(),
        repeats.to_string(),
        "0".into(),
        "0".into(),
        fmt(repeats as f64 / warm_wall),
        fmt(warm_p50),
        fmt(percentile(&mut warm_ms, 0.95)),
        fmt(percentile(&mut warm_ms, 0.99)),
    ]);
    let speedup = cold_p50 / warm_p50;
    println!(
        "warm-cache speedup: {:.1}x (cold p50 {} ms, warm p50 {} ms)",
        speedup,
        fmt(cold_p50),
        fmt(warm_p50)
    );
    assert!(
        speedup >= 10.0,
        "warm repeat must be >=10x faster than cold (got {speedup:.1}x)"
    );
    let stats = server.stats();
    assert!(stats.result_hits >= repeats as u64, "hit counter moved");
    // Every id's non-first seed misses the result cache (the key
    // includes the seed) but hits the compile cache, whose `Prepared`
    // carries compiled segment programs — so the warm-path counter must
    // have moved once per id at minimum.
    let program_hits = ids.len() as u64 * (seeds_per_id - 1);
    assert!(
        stats.compiled_program_hits >= program_hits,
        "compile-cache hits must hand out compiled programs \
         (wanted >={program_hits}, got {})",
        stats.compiled_program_hits
    );
    println!(
        "compiled-program cache hits: {}",
        stats.compiled_program_hits
    );
    server.shutdown();

    // --- saturation arm: tiny server, concurrent flood, expect sheds.
    let tiny = serve(
        ServeConfig::default()
            .with_workers(1)
            .with_queue_capacity(1),
    )
    .expect("bind ephemeral port");
    let tiny_addr = tiny.addr();
    let flood = if settings.full { 32 } else { 16 };
    let flood_request = request_for("J2", 9, &settings);
    let flood_started = Instant::now();
    let outcomes: Vec<(ReplyStatus, f64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..flood)
            .map(|_| {
                let request = flood_request.clone();
                scope.spawn(move || {
                    let started = Instant::now();
                    let reply = submit(tiny_addr, &request).expect("flood submit");
                    (reply.status, started.elapsed().as_secs_f64() * 1000.0)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let flood_wall = flood_started.elapsed().as_secs_f64();
    let ok = outcomes
        .iter()
        .filter(|(s, _)| *s == ReplyStatus::Ok)
        .count();
    let busy = outcomes
        .iter()
        .filter(|(s, _)| *s == ReplyStatus::Busy)
        .count();
    let errors = outcomes.len() - ok - busy;
    let mut flood_ms: Vec<f64> = outcomes.iter().map(|(_, ms)| *ms).collect();
    for (_, ms) in &outcomes {
        client_hist.record((ms * 1000.0) as u64);
    }
    table.row(vec![
        "saturation".into(),
        flood.to_string(),
        ok.to_string(),
        busy.to_string(),
        errors.to_string(),
        fmt(flood as f64 / flood_wall),
        fmt(percentile(&mut flood_ms, 0.50)),
        fmt(percentile(&mut flood_ms, 0.95)),
        fmt(percentile(&mut flood_ms, 0.99)),
    ]);
    println!("saturation: {ok} ok, {busy} busy, {errors} error of {flood}");
    assert!(ok >= 1, "at least one flooded request must be served");
    assert!(
        busy >= 1,
        "a saturated queue must shed load with structured BUSY responses"
    );
    assert_eq!(errors, 0, "saturation must not produce malformed replies");
    let shed = tiny.stats().shed;
    assert_eq!(shed, busy as u64, "shed counter matches BUSY replies");
    tiny.shutdown();

    // --- warm-restart arm: a fresh server process-equivalent (new
    // caches, same state directory) replays the cold corpus. The disk
    // tier must carry the warmth across the restart: ≥90% of the first
    // 100 requests hit (memory or disk), and every served result is
    // byte-identical to the original cold solve.
    let restart_started = Instant::now();
    let restarted =
        serve(ServeConfig::default().with_state_dir(&state_dir)).expect("bind ephemeral port");
    let restarted_addr = restarted.addr();
    let recovered = restarted.stats().persist;
    assert!(
        recovered.recovered >= (ids.len() as u64) * seeds_per_id,
        "recovery must readmit the cold corpus (got {} records)",
        recovered.recovered
    );
    assert_eq!(
        recovered.quarantined, 0,
        "clean shutdown leaves no corruption"
    );

    let first_n = 100usize;
    let mut restart_ms = Vec::new();
    let mut warm_hits = 0usize;
    let mut restart_to_warm_ms = f64::NAN;
    for i in 0..first_n {
        let (id, seed, baseline) = &cold_results[i % cold_results.len()];
        let request = request_for(id, *seed, &settings);
        let started = Instant::now();
        let reply = submit(restarted_addr, &request).expect("warm-restart submit");
        client_hist.record(started.elapsed().as_micros() as u64);
        restart_ms.push(started.elapsed().as_secs_f64() * 1000.0);
        assert_eq!(reply.status, ReplyStatus::Ok, "warm-restart solve failed");
        let cache = reply
            .json("service")
            .expect("service section")
            .get("cache")
            .and_then(|c| c.as_str())
            .map(str::to_string)
            .unwrap_or_default();
        if cache == "hit" || cache == "disk-hit" {
            warm_hits += 1;
            if restart_to_warm_ms.is_nan() {
                restart_to_warm_ms = restart_started.elapsed().as_secs_f64() * 1000.0;
            }
            assert_eq!(
                reply.section("result").unwrap(),
                baseline,
                "warm-restart result must be byte-identical to the cold solve"
            );
        }
    }
    let hit_rate = warm_hits as f64 / first_n as f64;
    let restart_stats = restarted.stats().persist;
    println!(
        "warm-restart: {warm_hits}/{first_n} warm ({:.0}%), restart-to-warm {} ms, \
         {} disk hits, {} disk misses",
        hit_rate * 100.0,
        fmt(restart_to_warm_ms),
        restart_stats.disk_hits,
        restart_stats.disk_misses
    );
    assert!(
        hit_rate >= 0.90,
        "warm-restart hit rate must be >=90% (got {:.0}%)",
        hit_rate * 100.0
    );
    assert!(
        restart_stats.disk_hits >= cold_results.len() as u64,
        "every replayed corpus entry must be served from disk once"
    );
    restarted.shutdown();

    let mut persist_table = Table::new(
        "persist: warm-restart recovery",
        vec![
            "arm",
            "requests",
            "warm_hits",
            "hit_rate",
            "restart_to_warm_ms",
            "recovered",
            "quarantined",
            "disk_hits",
            "p50_ms",
            "p95_ms",
        ],
    );
    persist_table.row(vec![
        "warm-restart".into(),
        first_n.to_string(),
        warm_hits.to_string(),
        fmt(hit_rate),
        fmt(restart_to_warm_ms),
        recovered.recovered.to_string(),
        recovered.quarantined.to_string(),
        restart_stats.disk_hits.to_string(),
        fmt(percentile(&mut restart_ms, 0.50)),
        fmt(percentile(&mut restart_ms, 0.95)),
    ]);
    persist_table.print();
    if let Ok(p) = persist_table.save_csv("persist") {
        println!("saved: {}", p.display());
    }
    if let Ok(p) = persist_table.save_json("BENCH_persist") {
        println!("saved: {}", p.display());
    }
    let _ = std::fs::remove_dir_all(&state_dir);

    // --- obs histogram rows: the client-side merged histogram, and the
    // server-side `serve.request_us` histogram the service records into
    // the global registry (both servers above share it, since they run
    // in this process). Bucketed percentiles are upper bounds, so they
    // may sit slightly above the exact nearest-rank values.
    assert_eq!(
        client_hist.count(),
        (cold_n + repeats + flood + first_n) as u64,
        "every request must be recorded in the obs histogram"
    );
    table.row(vec![
        "obs-client".into(),
        client_hist.count().to_string(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        fmt(hist_ms(&client_hist, 0.50)),
        fmt(hist_ms(&client_hist, 0.95)),
        fmt(hist_ms(&client_hist, 0.99)),
    ]);
    let server_hist = try_global()
        .and_then(|reg| reg.histogram("serve.request_us"))
        .expect("the service records request latencies");
    assert!(
        server_hist.count() >= (cold_n + repeats) as u64,
        "server-side histogram must cover at least the served requests"
    );
    table.row(vec![
        "obs-server".into(),
        server_hist.count().to_string(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        fmt(hist_ms(&server_hist, 0.50)),
        fmt(hist_ms(&server_hist, 0.95)),
        fmt(hist_ms(&server_hist, 0.99)),
    ]);

    table.print();
    if let Ok(p) = table.save_csv("loadgen") {
        println!("saved: {}", p.display());
    }
    if let Ok(p) = table.save_json("BENCH_loadgen") {
        println!("saved: {}", p.display());
    }
}

#[cfg(test)]
mod tests {
    use super::percentile;

    #[test]
    fn percentile_handles_empty_and_nearest_rank() {
        assert_eq!(percentile(&mut [], 0.5), 0.0);
        assert_eq!(percentile(&mut [], 0.99), 0.0);
        let mut one = [7.0];
        assert_eq!(percentile(&mut one, 0.5), 7.0);
        let mut samples = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&mut samples, 0.5), 2.0);
        assert_eq!(percentile(&mut samples, 1.0), 4.0);
        assert_eq!(percentile(&mut samples, 0.0), 1.0);
    }
}
