//! Fusion benchmark (PR 4 acceptance experiment): compiled-program
//! execution vs gate-by-gate.
//!
//! Two arms, each run fused and unfused from the same seed:
//!
//! * **dense-trajectory** — a noisy HEA-shaped circuit sampled over many
//!   trajectories. Two noise regimes: *readout-limited* (the asserted
//!   row — no gate channel is active, so the noise-aware trajectory
//!   plan fuses rotation columns into single 2×2 matrices and the CX
//!   ring into one label permutation) and *gate-noise* (reported for
//!   transparency — every gate channel is active, every gate is a
//!   barrier, and the plan degenerates to the bit-identical
//!   gate-by-gate sequence, so the speedup is ≈1×).
//! * **dense-batched** — the same compiled program through the lockstep
//!   batched engine ([`sample_trajectories`], 8 lanes per kernel sweep)
//!   against a single-lane per-stream reference on one thread, so the
//!   ratio isolates the structure-of-arrays batching win. Under
//!   `--full` the gate-noise regime must be ≥1.5× faster batched.
//! * **sparse** — full noisy Choco-Q and Rasengan solves on registry
//!   instances, exercising the compiled
//!   [`SegmentProgram`](rasengan_core::segment::SegmentProgram) /
//!   `FusedEval` paths (hoisted mixing constants, memoized objective
//!   phases, reused scratch).
//!
//! Both arms assert the fused results are identical to the unfused
//! reference before any timing is trusted. Default scale is a CI-safe
//! smoke run (equality asserts only); `--full` runs the acceptance
//! scale (≥1000 trajectories) and additionally asserts the ≥2× dense
//! and ≥1.5× sparse speedups. Saves `BENCH_fusion.{csv,json}` under
//! `target/rasengan-reports/`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rasengan_baselines::{BaselineConfig, ChocoQ};
use rasengan_bench::{report::fmt, RunSettings, Table};
use rasengan_core::solver::{Rasengan, RasenganConfig};
use rasengan_problems::registry::{benchmark, BenchmarkId};
use rasengan_qsim::exec::DenseTrajectoryRunner;
use rasengan_qsim::noise::{apply_readout_error, run_dense_trajectory};
use rasengan_qsim::parallel::derive_seed;
use rasengan_qsim::{sample_trajectories, Circuit, Device, Gate, Label, NoiseModel, Program};
use std::collections::BTreeMap;
use std::time::Instant;

/// Median wall-clock of `reps` runs of `work`, in seconds.
fn median_secs<T>(reps: usize, mut work: impl FnMut() -> T) -> (f64, T) {
    let mut times = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let started = Instant::now();
        last = Some(work());
        times.push(started.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.total_cmp(b));
    (times[times.len() / 2], last.unwrap())
}

/// The dense arm's workload: an `n`-qubit, `layers`-deep HEA-shaped
/// ansatz — full-SU(2) rotation columns (an Rz·Ry·Rz Euler triplet per
/// qubit, the shape 1-qubit fusion collapses to one matrix) + CX
/// entangling ring.
fn hea_circuit(n: usize, layers: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for layer in 0..layers {
        for q in 0..n {
            let t = 0.3 + 0.1 * (layer * n + q) as f64;
            c.push(Gate::Rz(q, 0.4 * t));
            c.push(Gate::Ry(q, t));
            c.push(Gate::Rz(q, 0.7 * t));
        }
        for q in 0..n {
            c.push(Gate::Cx(q, (q + 1) % n));
        }
    }
    for q in 0..n {
        c.push(Gate::Ry(q, 0.2 + 0.05 * q as f64));
    }
    c
}

/// Samples `trajectories` noisy shots gate-by-gate (the pre-fusion hot
/// path: one full circuit walk and a fresh state per trajectory).
fn dense_unfused(
    circuit: &Circuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
) -> BTreeMap<Label, usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = BTreeMap::new();
    for _ in 0..trajectories {
        let state = run_dense_trajectory(circuit, noise, &mut rng);
        let label = state.sample_one(&mut rng) as Label;
        let label = apply_readout_error(label, circuit.n_qubits(), noise.readout, &mut rng);
        *counts.entry(label).or_insert(0) += 1;
    }
    counts
}

/// The same workload through a compiled program and a reusable runner.
fn dense_fused(
    program: &Program,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
) -> BTreeMap<Label, usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut runner = DenseTrajectoryRunner::new(program);
    let mut counts = BTreeMap::new();
    for _ in 0..trajectories {
        let state = runner.run(noise, &mut rng);
        let label = state.sample_one(&mut rng) as Label;
        let label = apply_readout_error(label, program.n_qubits(), noise.readout, &mut rng);
        *counts.entry(label).or_insert(0) += 1;
    }
    counts
}

/// One fused trajectory per derived RNG stream — the sequential
/// reference the lockstep batched engine must reproduce bitwise. (The
/// `dense_unfused`/`dense_fused` arms above share one RNG across
/// trajectories, an ordering the batched engine deliberately does not
/// support; per-stream seeding is what makes lockstep execution
/// order-free.)
fn dense_per_stream(
    program: &Program,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
) -> Vec<u64> {
    let mut runner = DenseTrajectoryRunner::new(program);
    (0..trajectories)
        .map(|shot| {
            let mut rng = StdRng::seed_from_u64(derive_seed(seed, shot as u64));
            let state = runner.run(noise, &mut rng);
            let label = state.sample_one(&mut rng);
            apply_readout_error(label as Label, program.n_qubits(), noise.readout, &mut rng) as u64
        })
        .collect()
}

fn main() {
    let settings = RunSettings::from_args();
    let reps = 5;
    let mut table = Table::new(
        "fusion: compiled programs vs gate-by-gate (median of 5)",
        vec!["arm", "workload", "unfused_s", "fused_s", "speedup"],
    );

    // --- dense-trajectory arm.
    let (n, layers, trajectories) = if settings.full {
        (10, 4, 1000)
    } else {
        (8, 2, 60)
    };
    let circuit = hea_circuit(n, layers);
    let program = Program::compile(&circuit);
    // The asserted regime: readout-limited noise (gate channels quiet,
    // measurement errors dominant — the regime fusion exists for), plus
    // a fully-noisy regime reported alongside it, where active channels
    // bar all fusion and the plan is the gate-by-gate sequence.
    let regimes = [
        ("readout-limited", NoiseModel::ibm_like(0.0, 0.0, 0.013)),
        ("gate-noise", NoiseModel::ibm_like(0.002, 0.01, 0.01)),
    ];
    let mut dense_speedup = 0.0;
    for (regime, noise) in &regimes {
        println!(
            "dense arm [{regime}]: n={n} layers={layers} gates={} -> {} kernels \
             ({} plan steps), {trajectories} trajectories",
            circuit.len(),
            program.kernel_count(),
            program.traj_plan_len(noise),
        );
        // Interleaved rep pairs + median per-pair ratio (see the
        // batched arm below for why: host frequency drift between two
        // independently-measured medians dwarfs the effect under test).
        let mut ratios = Vec::with_capacity(reps);
        let mut unfused_times = Vec::with_capacity(reps);
        let mut fused_times = Vec::with_capacity(reps);
        for _ in 0..reps {
            let started = Instant::now();
            let unfused_counts = dense_unfused(&circuit, noise, trajectories, settings.seed);
            let unfused_s = started.elapsed().as_secs_f64();
            let started = Instant::now();
            let fused_counts = dense_fused(&program, noise, trajectories, settings.seed);
            let fused_s = started.elapsed().as_secs_f64();
            assert_eq!(
                unfused_counts, fused_counts,
                "fused dense trajectories must reproduce the unfused counts bitwise"
            );
            ratios.push(unfused_s / fused_s);
            unfused_times.push(unfused_s);
            fused_times.push(fused_s);
        }
        ratios.sort_by(|a, b| a.total_cmp(b));
        unfused_times.sort_by(|a, b| a.total_cmp(b));
        fused_times.sort_by(|a, b| a.total_cmp(b));
        let speedup = ratios[ratios.len() / 2];
        table.row(vec![
            format!("dense-{regime}"),
            format!("hea n={n} L={layers} T={trajectories}"),
            fmt(unfused_times[reps / 2]),
            fmt(fused_times[reps / 2]),
            format!("{speedup:.2}x"),
        ]);
        println!("dense-trajectory [{regime}] speedup: {speedup:.2}x");
        if *regime == "readout-limited" {
            dense_speedup = speedup;
        }
    }

    // --- batched-trajectory arm: the lockstep engine (8 lanes per
    // kernel sweep) against a single-lane per-stream reference, both on
    // one engine thread so the ratio isolates batching. Bitwise
    // equality is asserted before any timing is trusted.
    let mut batched_speedup = 0.0;
    for (regime, noise) in &regimes {
        // Sequential and batched reps are interleaved (pairwise) so VM
        // frequency drift hits both arms equally; the reported number
        // is the median per-pair ratio, which is far more stable than
        // a ratio of independently-measured medians on a noisy host.
        let mut ratios = Vec::with_capacity(reps);
        let mut seq_times = Vec::with_capacity(reps);
        let mut batched_times = Vec::with_capacity(reps);
        for _ in 0..reps {
            let started = Instant::now();
            let seq_labels = dense_per_stream(&program, noise, trajectories, settings.seed);
            let seq_s = started.elapsed().as_secs_f64();
            let started = Instant::now();
            let batched_labels = sample_trajectories(
                &program,
                noise,
                trajectories,
                settings.seed,
                Some(8),
                Some(1),
            );
            let batched_s = started.elapsed().as_secs_f64();
            assert_eq!(
                seq_labels, batched_labels,
                "batched trajectories must reproduce the per-stream labels bitwise"
            );
            ratios.push(seq_s / batched_s);
            seq_times.push(seq_s);
            batched_times.push(batched_s);
        }
        ratios.sort_by(|a, b| a.total_cmp(b));
        seq_times.sort_by(|a, b| a.total_cmp(b));
        batched_times.sort_by(|a, b| a.total_cmp(b));
        let speedup = ratios[ratios.len() / 2];
        table.row(vec![
            format!("dense-batched-{regime}"),
            format!("hea n={n} L={layers} T={trajectories} K=8"),
            fmt(seq_times[reps / 2]),
            fmt(batched_times[reps / 2]),
            format!("{speedup:.2}x"),
        ]);
        println!("dense-batched [{regime}] speedup: {speedup:.2}x");
        if *regime == "gate-noise" {
            batched_speedup = speedup;
        }
    }

    // --- sparse arm: noisy Choco-Q and Rasengan solves.
    let id = if settings.full { "K2" } else { "F1" };
    let problem = benchmark(BenchmarkId::parse(id).expect("registry id"));
    let iterations = if settings.full { 40 } else { 6 };
    let shots = if settings.full { 1024 } else { 128 };

    let cq_cfg = BaselineConfig::default()
        .with_seed(settings.seed)
        .with_layers(2)
        .with_shots(shots)
        .with_max_iterations(iterations)
        .on_device(Device::ibm_kyiv());
    let (cq_unfused_s, cq_unfused) = median_secs(reps, || {
        ChocoQ::new(cq_cfg.clone().without_fusion())
            .solve(&problem)
            .expect("chocoq solve")
    });
    let (cq_fused_s, cq_fused) = median_secs(reps, || {
        ChocoQ::new(cq_cfg.clone())
            .solve(&problem)
            .expect("chocoq solve")
    });
    assert_eq!(
        cq_unfused.distribution, cq_fused.distribution,
        "fused Choco-Q must reproduce the unfused distribution bitwise"
    );
    assert_eq!(cq_unfused.arg, cq_fused.arg);
    let cq_speedup = cq_unfused_s / cq_fused_s;
    table.row(vec![
        "sparse-chocoq".into(),
        format!("{id} noisy, {iterations} iters x {shots} shots"),
        fmt(cq_unfused_s),
        fmt(cq_fused_s),
        format!("{cq_speedup:.2}x"),
    ]);
    println!("sparse choco-q speedup: {cq_speedup:.2}x");

    let ras_cfg = RasenganConfig::default()
        .with_seed(settings.seed)
        .with_shots(shots)
        .with_max_iterations(iterations)
        .on_device(Device::ibm_kyiv());
    let (ras_unfused_s, ras_unfused) = median_secs(reps, || {
        Rasengan::new(ras_cfg.clone().without_fusion())
            .solve(&problem)
            .expect("rasengan solve")
    });
    let (ras_fused_s, ras_fused) = median_secs(reps, || {
        Rasengan::new(ras_cfg.clone())
            .solve(&problem)
            .expect("rasengan solve")
    });
    assert_eq!(
        ras_unfused.distribution, ras_fused.distribution,
        "fused Rasengan must reproduce the unfused distribution bitwise"
    );
    assert_eq!(ras_unfused.arg, ras_fused.arg);
    let ras_speedup = ras_unfused_s / ras_fused_s;
    table.row(vec![
        "sparse-rasengan".into(),
        format!("{id} noisy, {iterations} iters x {shots} shots"),
        fmt(ras_unfused_s),
        fmt(ras_fused_s),
        format!("{ras_speedup:.2}x"),
    ]);
    println!("sparse rasengan speedup: {ras_speedup:.2}x");

    // --- tracing no-op overhead guard. Run the same solve with tracing
    // disabled (the default) and enabled, as interleaved pairs. The
    // traced run does strictly more work (span tree construction), so
    // if the disabled path were not a true no-op its cost would surface
    // as a median pairwise disabled/traced ratio above 1.02. (The pairs
    // matter: comparing against the sparse arm's minutes-old timing
    // confuses host frequency drift with tracing overhead.) Tracing
    // must also leave every result byte untouched.
    let mut trace_ratios = Vec::with_capacity(reps);
    let mut disabled_times = Vec::with_capacity(reps);
    let mut traced_times = Vec::with_capacity(reps);
    let mut traced = None;
    for _ in 0..reps {
        let started = Instant::now();
        let disabled = Rasengan::new(ras_cfg.clone())
            .solve(&problem)
            .expect("rasengan solve");
        let disabled_s = started.elapsed().as_secs_f64();
        let started = Instant::now();
        let with_trace = Rasengan::new(ras_cfg.clone().with_trace(true))
            .solve(&problem)
            .expect("rasengan solve (traced)");
        let traced_s = started.elapsed().as_secs_f64();
        assert_eq!(
            disabled.distribution, with_trace.distribution,
            "tracing must not change the solve distribution"
        );
        trace_ratios.push(disabled_s / traced_s);
        disabled_times.push(disabled_s);
        traced_times.push(traced_s);
        traced = Some(with_trace);
    }
    let traced = traced.expect("at least one traced rep");
    assert_eq!(ras_fused.distribution, traced.distribution);
    assert_eq!(ras_fused.arg, traced.arg);
    assert_eq!(ras_fused.best.bits, traced.best.bits);
    trace_ratios.sort_by(|a, b| a.total_cmp(b));
    disabled_times.sort_by(|a, b| a.total_cmp(b));
    traced_times.sort_by(|a, b| a.total_cmp(b));
    let trace_ratio = trace_ratios[trace_ratios.len() / 2];
    let disabled_s = disabled_times[reps / 2];
    let traced_s = traced_times[reps / 2];
    let tree = traced.trace.as_ref().expect("traced solve carries a tree");
    table.row(vec![
        "trace-noop".into(),
        format!("{id} noisy, {} spans when enabled", tree.count()),
        fmt(disabled_s),
        fmt(traced_s),
        format!("{trace_ratio:.2}x"),
    ]);
    println!("tracing disabled/enabled: {disabled_s:.4}s / {traced_s:.4}s ({trace_ratio:.2}x)");

    if settings.full {
        assert!(
            trace_ratio <= 1.02,
            "disabled tracing must be within 2% of the traced run \
             (median pairwise ratio {trace_ratio:.4})"
        );
        assert!(
            dense_speedup >= 2.0,
            "dense-trajectory arm must be >=2x faster fused (got {dense_speedup:.2}x)"
        );
        assert!(
            batched_speedup >= 1.5,
            "batched arm must be >=1.5x faster than per-stream sequential on the \
             gate-noise regime (got {batched_speedup:.2}x)"
        );
        let sparse_best = cq_speedup.max(ras_speedup);
        assert!(
            sparse_best >= 1.5,
            "sparse arm must be >=1.5x faster fused (got chocoq {cq_speedup:.2}x, \
             rasengan {ras_speedup:.2}x)"
        );
    }

    table.print();
    if let Ok(p) = table.save_csv("fusion") {
        println!("saved: {}", p.display());
    }
    if let Ok(p) = table.save_json("BENCH_fusion") {
        println!("saved: {}", p.display());
    }
}
