//! Fusion benchmark (PR 4 acceptance experiment): compiled-program
//! execution vs gate-by-gate.
//!
//! Two arms, each run fused and unfused from the same seed:
//!
//! * **dense-trajectory** — a noisy HEA-shaped circuit sampled over many
//!   trajectories. Two noise regimes: *readout-limited* (the asserted
//!   row — no gate channel is active, so the noise-aware trajectory
//!   plan fuses rotation columns into single 2×2 matrices and the CX
//!   ring into one label permutation) and *gate-noise* (reported for
//!   transparency — every gate channel is active, every gate is a
//!   barrier, and the plan degenerates to the bit-identical
//!   gate-by-gate sequence, so the speedup is ≈1×).
//! * **sparse** — full noisy Choco-Q and Rasengan solves on registry
//!   instances, exercising the compiled
//!   [`SegmentProgram`](rasengan_core::segment::SegmentProgram) /
//!   `FusedEval` paths (hoisted mixing constants, memoized objective
//!   phases, reused scratch).
//!
//! Both arms assert the fused results are identical to the unfused
//! reference before any timing is trusted. Default scale is a CI-safe
//! smoke run (equality asserts only); `--full` runs the acceptance
//! scale (≥1000 trajectories) and additionally asserts the ≥2× dense
//! and ≥1.5× sparse speedups. Saves `BENCH_fusion.{csv,json}` under
//! `target/rasengan-reports/`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rasengan_baselines::{BaselineConfig, ChocoQ};
use rasengan_bench::{report::fmt, RunSettings, Table};
use rasengan_core::solver::{Rasengan, RasenganConfig};
use rasengan_problems::registry::{benchmark, BenchmarkId};
use rasengan_qsim::exec::DenseTrajectoryRunner;
use rasengan_qsim::noise::{apply_readout_error, run_dense_trajectory};
use rasengan_qsim::{Circuit, Device, Gate, Label, NoiseModel, Program};
use std::collections::BTreeMap;
use std::time::Instant;

/// Median wall-clock of `reps` runs of `work`, in seconds.
fn median_secs<T>(reps: usize, mut work: impl FnMut() -> T) -> (f64, T) {
    let mut times = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let started = Instant::now();
        last = Some(work());
        times.push(started.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.total_cmp(b));
    (times[times.len() / 2], last.unwrap())
}

/// The dense arm's workload: an `n`-qubit, `layers`-deep HEA-shaped
/// ansatz — full-SU(2) rotation columns (an Rz·Ry·Rz Euler triplet per
/// qubit, the shape 1-qubit fusion collapses to one matrix) + CX
/// entangling ring.
fn hea_circuit(n: usize, layers: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for layer in 0..layers {
        for q in 0..n {
            let t = 0.3 + 0.1 * (layer * n + q) as f64;
            c.push(Gate::Rz(q, 0.4 * t));
            c.push(Gate::Ry(q, t));
            c.push(Gate::Rz(q, 0.7 * t));
        }
        for q in 0..n {
            c.push(Gate::Cx(q, (q + 1) % n));
        }
    }
    for q in 0..n {
        c.push(Gate::Ry(q, 0.2 + 0.05 * q as f64));
    }
    c
}

/// Samples `trajectories` noisy shots gate-by-gate (the pre-fusion hot
/// path: one full circuit walk and a fresh state per trajectory).
fn dense_unfused(
    circuit: &Circuit,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
) -> BTreeMap<Label, usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = BTreeMap::new();
    for _ in 0..trajectories {
        let state = run_dense_trajectory(circuit, noise, &mut rng);
        let label = state.sample_one(&mut rng) as Label;
        let label = apply_readout_error(label, circuit.n_qubits(), noise.readout, &mut rng);
        *counts.entry(label).or_insert(0) += 1;
    }
    counts
}

/// The same workload through a compiled program and a reusable runner.
fn dense_fused(
    program: &Program,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
) -> BTreeMap<Label, usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut runner = DenseTrajectoryRunner::new(program);
    let mut counts = BTreeMap::new();
    for _ in 0..trajectories {
        let state = runner.run(noise, &mut rng);
        let label = state.sample_one(&mut rng) as Label;
        let label = apply_readout_error(label, program.n_qubits(), noise.readout, &mut rng);
        *counts.entry(label).or_insert(0) += 1;
    }
    counts
}

fn main() {
    let settings = RunSettings::from_args();
    let reps = 5;
    let mut table = Table::new(
        "fusion: compiled programs vs gate-by-gate (median of 5)",
        vec!["arm", "workload", "unfused_s", "fused_s", "speedup"],
    );

    // --- dense-trajectory arm.
    let (n, layers, trajectories) = if settings.full {
        (10, 4, 1000)
    } else {
        (8, 2, 60)
    };
    let circuit = hea_circuit(n, layers);
    let program = Program::compile(&circuit);
    // The asserted regime: readout-limited noise (gate channels quiet,
    // measurement errors dominant — the regime fusion exists for), plus
    // a fully-noisy regime reported alongside it, where active channels
    // bar all fusion and the plan is the gate-by-gate sequence.
    let regimes = [
        ("readout-limited", NoiseModel::ibm_like(0.0, 0.0, 0.013)),
        ("gate-noise", NoiseModel::ibm_like(0.002, 0.01, 0.01)),
    ];
    let mut dense_speedup = 0.0;
    for (regime, noise) in &regimes {
        println!(
            "dense arm [{regime}]: n={n} layers={layers} gates={} -> {} kernels \
             ({} plan steps), {trajectories} trajectories",
            circuit.len(),
            program.kernel_count(),
            program.traj_plan_len(noise),
        );
        let (unfused_s, unfused_counts) = median_secs(reps, || {
            dense_unfused(&circuit, noise, trajectories, settings.seed)
        });
        let (fused_s, fused_counts) = median_secs(reps, || {
            dense_fused(&program, noise, trajectories, settings.seed)
        });
        assert_eq!(
            unfused_counts, fused_counts,
            "fused dense trajectories must reproduce the unfused counts bitwise"
        );
        let speedup = unfused_s / fused_s;
        table.row(vec![
            format!("dense-{regime}"),
            format!("hea n={n} L={layers} T={trajectories}"),
            fmt(unfused_s),
            fmt(fused_s),
            format!("{speedup:.2}x"),
        ]);
        println!("dense-trajectory [{regime}] speedup: {speedup:.2}x");
        if *regime == "readout-limited" {
            dense_speedup = speedup;
        }
    }

    // --- sparse arm: noisy Choco-Q and Rasengan solves.
    let id = if settings.full { "K2" } else { "F1" };
    let problem = benchmark(BenchmarkId::parse(id).expect("registry id"));
    let iterations = if settings.full { 40 } else { 6 };
    let shots = if settings.full { 1024 } else { 128 };

    let cq_cfg = BaselineConfig::default()
        .with_seed(settings.seed)
        .with_layers(2)
        .with_shots(shots)
        .with_max_iterations(iterations)
        .on_device(Device::ibm_kyiv());
    let (cq_unfused_s, cq_unfused) = median_secs(reps, || {
        ChocoQ::new(cq_cfg.clone().without_fusion())
            .solve(&problem)
            .expect("chocoq solve")
    });
    let (cq_fused_s, cq_fused) = median_secs(reps, || {
        ChocoQ::new(cq_cfg.clone())
            .solve(&problem)
            .expect("chocoq solve")
    });
    assert_eq!(
        cq_unfused.distribution, cq_fused.distribution,
        "fused Choco-Q must reproduce the unfused distribution bitwise"
    );
    assert_eq!(cq_unfused.arg, cq_fused.arg);
    let cq_speedup = cq_unfused_s / cq_fused_s;
    table.row(vec![
        "sparse-chocoq".into(),
        format!("{id} noisy, {iterations} iters x {shots} shots"),
        fmt(cq_unfused_s),
        fmt(cq_fused_s),
        format!("{cq_speedup:.2}x"),
    ]);
    println!("sparse choco-q speedup: {cq_speedup:.2}x");

    let ras_cfg = RasenganConfig::default()
        .with_seed(settings.seed)
        .with_shots(shots)
        .with_max_iterations(iterations)
        .on_device(Device::ibm_kyiv());
    let (ras_unfused_s, ras_unfused) = median_secs(reps, || {
        Rasengan::new(ras_cfg.clone().without_fusion())
            .solve(&problem)
            .expect("rasengan solve")
    });
    let (ras_fused_s, ras_fused) = median_secs(reps, || {
        Rasengan::new(ras_cfg.clone())
            .solve(&problem)
            .expect("rasengan solve")
    });
    assert_eq!(
        ras_unfused.distribution, ras_fused.distribution,
        "fused Rasengan must reproduce the unfused distribution bitwise"
    );
    assert_eq!(ras_unfused.arg, ras_fused.arg);
    let ras_speedup = ras_unfused_s / ras_fused_s;
    table.row(vec![
        "sparse-rasengan".into(),
        format!("{id} noisy, {iterations} iters x {shots} shots"),
        fmt(ras_unfused_s),
        fmt(ras_fused_s),
        format!("{ras_speedup:.2}x"),
    ]);
    println!("sparse rasengan speedup: {ras_speedup:.2}x");

    // --- tracing no-op overhead guard. The fused Rasengan timing above
    // ran with tracing disabled (the default); run the same solve with
    // tracing enabled. The traced run does strictly more work (span
    // tree construction), so if the disabled path were not a true
    // no-op its cost would surface as `disabled > traced * 1.02`.
    // Tracing must also leave every result byte untouched.
    let (traced_s, traced) = median_secs(reps, || {
        Rasengan::new(ras_cfg.clone().with_trace(true))
            .solve(&problem)
            .expect("rasengan solve (traced)")
    });
    assert_eq!(
        ras_fused.distribution, traced.distribution,
        "tracing must not change the solve distribution"
    );
    assert_eq!(ras_fused.arg, traced.arg);
    assert_eq!(ras_fused.best.bits, traced.best.bits);
    let tree = traced.trace.as_ref().expect("traced solve carries a tree");
    let trace_ratio = ras_fused_s / traced_s;
    table.row(vec![
        "trace-noop".into(),
        format!("{id} noisy, {} spans when enabled", tree.count()),
        fmt(ras_fused_s),
        fmt(traced_s),
        format!("{trace_ratio:.2}x"),
    ]);
    println!("tracing disabled/enabled: {ras_fused_s:.4}s / {traced_s:.4}s ({trace_ratio:.2}x)");

    if settings.full {
        assert!(
            ras_fused_s <= traced_s * 1.02,
            "disabled tracing must be within 2% of the traced run \
             (disabled {ras_fused_s:.4}s, traced {traced_s:.4}s)"
        );
        assert!(
            dense_speedup >= 2.0,
            "dense-trajectory arm must be >=2x faster fused (got {dense_speedup:.2}x)"
        );
        let sparse_best = cq_speedup.max(ras_speedup);
        assert!(
            sparse_best >= 1.5,
            "sparse arm must be >=1.5x faster fused (got chocoq {cq_speedup:.2}x, \
             rasengan {ras_speedup:.2}x)"
        );
    }

    table.print();
    if let Ok(p) = table.save_csv("fusion") {
        println!("saved: {}", p.display());
    }
    if let Ok(p) = table.save_json("BENCH_fusion") {
        println!("saved: {}", p.display());
    }
}
