//! **Table 2** — algorithmic evaluation on ARG, circuit depth, and the
//! number of parameters across the 20 benchmarks (noise-free).
//!
//! For each benchmark F1…G4 the harness prints the instance statistics
//! (#variables, #constraints, average constraint-graph degree, #feasible
//! solutions) and the ARG / depth / #params of the four algorithms.
//! Expected shape (paper): Rasengan lowest ARG everywhere (4.12× better
//! than Choco-Q on average, ~1900× better than HEA/P-QAOA), smallest
//! depth (1.96×–49×), and #params comparable to QAOA's 10.

use rasengan_bench::report::fmt;
use rasengan_bench::runners::RunEnv;
use rasengan_bench::{run_algorithm, Algorithm, RunSettings, Table};
use rasengan_problems::registry::{all_ids, benchmark};
use rasengan_problems::{constraint_topology, enumerate_feasible};

fn main() {
    let settings = RunSettings::from_args();

    let mut info = Table::new(
        "Table 2a: benchmark statistics",
        vec!["bench", "#vars", "#cons", "avg_degree", "#feasible"],
    );
    let mut quality = Table::new(
        "Table 2b: ARG / circuit depth / #params per algorithm",
        vec![
            "bench", "HEA_arg", "PQ_arg", "CQ_arg", "RAS_arg", "HEA_dep", "PQ_dep", "CQ_dep",
            "RAS_dep", "HEA_par", "PQ_par", "CQ_par", "RAS_par",
        ],
    );

    let mut geo: std::collections::HashMap<Algorithm, (f64, usize)> =
        std::collections::HashMap::new();

    for id in all_ids() {
        let problem = benchmark(id);
        let topo = constraint_topology(&problem);
        let feasible = enumerate_feasible(&problem).len();
        info.row(vec![
            id.to_string(),
            problem.n_vars().to_string(),
            problem.n_constraints().to_string(),
            fmt(topo.avg_degree),
            feasible.to_string(),
        ]);

        let mut args = Vec::new();
        let mut depths = Vec::new();
        let mut params = Vec::new();
        for alg in Algorithm::all() {
            let env = RunEnv {
                seed: settings.seed,
                iterations: if alg == Algorithm::Rasengan {
                    settings.rasengan_iterations()
                } else {
                    settings.baseline_iterations(problem.n_vars())
                },
                layers: 5,
                threads: settings.threads,
                ..Default::default()
            };
            let r = run_algorithm(alg, &problem, &env);
            let entry = geo.entry(alg).or_insert((0.0, 0));
            if r.arg.is_finite() {
                // Floor exact zeros at 1e-4 so a single perfect run does
                // not drive the geometric mean to zero.
                entry.0 += r.arg.max(1e-4).ln();
                entry.1 += 1;
            }
            args.push(fmt(r.arg));
            depths.push(r.depth.to_string());
            params.push(r.n_params.to_string());
            eprintln!(
                "[{}] {:<9} arg={:<10} depth={:<6} params={}",
                id,
                alg.name(),
                fmt(r.arg),
                r.depth,
                r.n_params
            );
        }
        let mut row = vec![id.to_string()];
        row.extend(args);
        row.extend(depths);
        row.extend(params);
        quality.row(row);
    }

    info.print();
    quality.print();
    println!("## Geometric-mean ARG");
    for alg in Algorithm::all() {
        if let Some(&(sum, n)) = geo.get(&alg) {
            if n > 0 {
                println!("  {:<9} {}", alg.name(), fmt((sum / n as f64).exp()));
            }
        }
    }
    let _ = info.save_csv("table2_info");
    if let Ok(p) = quality.save_csv("table2_quality") {
        println!("saved: {}", p.display());
    }
}
