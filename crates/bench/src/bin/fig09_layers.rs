//! **Figure 9** — ARG as a function of QAOA layer count on F1.
//!
//! P-QAOA and Choco-Q sweep 1–14 layers; Rasengan has no layer knob and
//! appears as a constant reference line. Expected shape (paper):
//! Choco-Q approaches Rasengan's ARG around 14 layers but at ~1419
//! depth, while Rasengan stays at 3 shallow segments; P-QAOA barely
//! improves with depth.

use rasengan_bench::report::fmt;
use rasengan_bench::runners::RunEnv;
use rasengan_bench::{run_algorithm, Algorithm, RunSettings, Table};
use rasengan_problems::registry::{benchmark, BenchmarkId};

fn main() {
    let settings = RunSettings::from_args();
    let problem = benchmark(BenchmarkId::parse("F2").unwrap());

    let ras_env = RunEnv {
        seed: settings.seed,
        iterations: settings.rasengan_iterations(),
        threads: settings.threads,
        ..Default::default()
    };
    let ras = run_algorithm(Algorithm::Rasengan, &problem, &ras_env);

    let max_layers = if settings.full { 14 } else { 8 };
    let mut table = Table::new(
        "Figure 9: ARG vs QAOA layers (FLP, second scale)",
        vec![
            "layers",
            "PQAOA_arg",
            "PQAOA_depth",
            "ChocoQ_arg",
            "ChocoQ_depth",
            "Rasengan_arg",
            "Rasengan_depth",
        ],
    );
    for layers in 1..=max_layers {
        let env = RunEnv {
            seed: settings.seed,
            iterations: settings.baseline_iterations(problem.n_vars()),
            layers,
            threads: settings.threads,
            ..Default::default()
        };
        let pq = run_algorithm(Algorithm::PQaoa, &problem, &env);
        let cq = run_algorithm(Algorithm::ChocoQ, &problem, &env);
        table.row(vec![
            layers.to_string(),
            fmt(pq.arg),
            pq.depth.to_string(),
            fmt(cq.arg),
            cq.depth.to_string(),
            fmt(ras.arg),
            ras.depth.to_string(),
        ]);
        eprintln!(
            "layers={layers}: pqaoa={} chocoq={} ras={}",
            fmt(pq.arg),
            fmt(cq.arg),
            fmt(ras.arg)
        );
    }
    table.print();
    println!(
        "Rasengan reference: {} segments × depth {}",
        ras.n_params.min(99),
        ras.depth
    );
    if let Ok(p) = table.save_csv("fig09_layers") {
        println!("saved: {}", p.display());
    }
}
