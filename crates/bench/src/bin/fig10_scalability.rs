//! **Figure 10** — scalability analysis on large-scale FLP (6–105
//! variables).
//!
//! (a) maximum #segments vs variables (quadratic without pruning,
//!     reduced with), (b) per-segment circuit depth compiled onto the
//!     Quebec heavy-hex topology (bounded, ~3×10³ ceiling),
//! (c) noise-free ARG (Rasengan stays < 0.5 up to 78 qubits),
//! (d) ARG under device noise (segments start failing past ~28 qubits).

use rasengan_bench::report::fmt;
use rasengan_bench::{RunSettings, Table};
use rasengan_core::{Rasengan, RasenganConfig, ResilienceConfig};
use rasengan_problems::flp::FacilityLocation;
use rasengan_qsim::route::{route_circuit, CouplingMap};
use rasengan_qsim::{Device, NoiseModel};

fn main() {
    let settings = RunSettings::from_args();
    // (facilities, demands) ladders: n = f + 2fd.
    let shapes: &[(usize, usize)] = if settings.full {
        &[
            (2, 1),
            (2, 2),
            (3, 2),
            (3, 3),
            (4, 3),
            (4, 4),
            (5, 4),
            (4, 6),
            (5, 6),
            (5, 8),
            (5, 10),
        ]
    } else {
        &[(2, 1), (2, 2), (3, 2), (3, 3), (4, 4), (5, 6), (5, 10)]
    };

    let mut table = Table::new(
        "Figure 10: FLP scalability",
        vec![
            "vars",
            "segs_unpruned",
            "segs_pruned",
            "depth_quebec",
            "arg_noisefree",
            "arg_noisy",
            "arg_resilient",
            "recoveries",
        ],
    );

    for &(f, d) in shapes {
        let flp = FacilityLocation::generate(f, d, settings.seed);
        let problem = flp.into_problem();
        let n = problem.n_vars();
        let iters = if settings.full { 200 } else { 40 };

        // (a) segments with and without pruning.
        let pruned_prep = Rasengan::new(RasenganConfig::default().with_seed(settings.seed))
            .prepare(&problem)
            .expect("FLP prepares");
        let unpruned_prep = {
            let mut cfg = RasenganConfig::default().with_seed(settings.seed);
            cfg.prune = false;
            cfg.early_stop = false;
            Rasengan::new(cfg).prepare(&problem).expect("FLP prepares")
        };

        // (b) compiled depth of the deepest segment on Quebec's
        // heavy-hex topology: route one representative τ circuit.
        let depth_routed = {
            let deepest = pruned_prep
                .chain
                .ops
                .iter()
                .max_by_key(|o| o.weight())
                .expect("non-empty chain");
            let circuit = deepest.circuit(0.5, n);
            let coupling = CouplingMap::heavy_hex(n);
            let routed = route_circuit(&circuit, &coupling);
            // Charge the MCP pair with the 34k model on top of routing
            // swaps (2-qubit depth × 3 CX per swap).
            deepest.cx_cost() + 3 * routed.swaps_inserted
        };

        // (c) noise-free ARG. Past ~24 variables the feasible support
        // explodes (FLP(5,10) has ~10⁷ feasible states), so large
        // instances run shot-based — exactly like hardware — instead of
        // exact mixture propagation.
        let mut clean_cfg = RasenganConfig::default()
            .with_seed(settings.seed)
            .with_max_iterations(iters);
        if n > 24 {
            clean_cfg = clean_cfg.with_shots(2048);
        }
        let arg_clean = Rasengan::new(clean_cfg)
            .solve(&problem)
            .map(|o| o.arg)
            .unwrap_or(f64::INFINITY);

        // (d) ARG under Eagle-class noise; may fail (reported as inf).
        // Trajectory sampling dominates wall-clock here, so the noisy
        // arm uses a trimmed budget (the initial COBYLA simplex alone
        // is one evaluation per parameter).
        let noisy_iters = if settings.full { 30 } else { 8 };
        let noisy_shots = if n > 24 { 128 } else { 256 };
        let noisy_cfg = RasenganConfig::default()
            .with_seed(settings.seed)
            .with_noise(Device::ibm_brisbane().noise)
            .with_shots(noisy_shots)
            .with_max_iterations(noisy_iters);
        let arg_noisy = Rasengan::new(noisy_cfg.clone())
            .solve(&problem)
            .map(|o| o.arg)
            .unwrap_or(f64::INFINITY);
        // Same run with the recovery ladder armed: segments that fail
        // past ~28 qubits retry with escalated shots, then degrade.
        let (arg_resilient, recoveries) =
            match Rasengan::new(noisy_cfg.with_resilience(ResilienceConfig::recommended()))
                .solve(&problem)
            {
                Ok(o) => (
                    o.arg,
                    o.resilience.recoveries() + o.resilience.degradations(),
                ),
                Err(_) => (f64::INFINITY, 0),
            };
        let _ = NoiseModel::noise_free();

        let fmt_or_fail = |a: f64| {
            if a.is_finite() {
                fmt(a)
            } else {
                "fail".to_string()
            }
        };
        table.row(vec![
            n.to_string(),
            unpruned_prep.stats.n_segments.to_string(),
            pruned_prep.stats.n_segments.to_string(),
            depth_routed.to_string(),
            fmt(arg_clean),
            fmt_or_fail(arg_noisy),
            fmt_or_fail(arg_resilient),
            recoveries.to_string(),
        ]);
        eprintln!(
            "n={n}: segs {} -> {}, arg {} / noisy {} / resilient {} ({} recoveries)",
            unpruned_prep.stats.n_segments,
            pruned_prep.stats.n_segments,
            fmt(arg_clean),
            fmt(arg_noisy),
            fmt(arg_resilient),
            recoveries
        );
    }

    table.print();
    if let Ok(p) = table.save_csv("fig10_scalability") {
        println!("saved: {}", p.display());
    }
    if let Ok(p) = table.save_json("BENCH_fig10_scalability") {
        println!("saved: {}", p.display());
    }
}
