//! Report tables: aligned console output plus CSV and JSON files under
//! `target/rasengan-reports/`.

use rasengan_serve::Json;
use std::fs;
use std::path::PathBuf;

/// A simple fixed-width report table.
///
/// # Example
///
/// ```
/// use rasengan_bench::Table;
///
/// let mut t = Table::new("demo", vec!["bench", "ARG"]);
/// t.row(vec!["F1".into(), format!("{:.2}", 0.01)]);
/// let rendered = t.render();
/// assert!(rendered.contains("F1"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: Vec<&str>) -> Self {
        Table {
            title: title.into(),
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = format!("## {}\n", self.title);
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Writes the table as CSV under `target/rasengan-reports/<name>.csv`
    /// and returns the path.
    pub fn save_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from("target/rasengan-reports");
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut csv = self.headers.join(",");
        csv.push('\n');
        for row in &self.rows {
            csv.push_str(&row.join(","));
            csv.push('\n');
        }
        fs::write(&path, csv)?;
        Ok(path)
    }

    /// Writes the table as machine-readable JSON
    /// (`{"title", "headers", "rows"}`) under
    /// `target/rasengan-reports/<name>.json` and returns the path.
    /// Cells stay strings — the JSON mirrors the CSV, it does not
    /// guess column types.
    pub fn save_json(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from("target/rasengan-reports");
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.json"));
        let json = Json::obj(vec![
            ("title", Json::Str(self.title.clone())),
            (
                "headers",
                Json::Arr(self.headers.iter().map(|h| Json::Str(h.clone())).collect()),
            ),
            (
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|row| Json::Arr(row.iter().map(|c| Json::Str(c.clone())).collect()))
                        .collect(),
                ),
            ),
        ]);
        fs::write(&path, json.render())?;
        Ok(path)
    }
}

/// Formats a float compactly for report cells.
pub fn fmt(v: f64) -> String {
    if !v.is_finite() {
        "inf".to_string()
    } else if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("t", vec!["a", "long-header"]);
        t.row(vec!["x".into(), "1".into()]);
        let r = t.render();
        assert!(r.contains("long-header"));
        assert!(r.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        Table::new("t", vec!["a"]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(0.1234), "0.123");
        assert_eq!(fmt(2.7777), "2.78");
        assert_eq!(fmt(1234.0), "1234");
        assert_eq!(fmt(f64::INFINITY), "inf");
    }

    #[test]
    fn csv_written() {
        let mut t = Table::new("t", vec!["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let p = t.save_csv("unit-test-table").unwrap();
        let content = std::fs::read_to_string(&p).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
    }

    #[test]
    fn json_written() {
        let mut t = Table::new("t", vec!["a", "b"]);
        t.row(vec!["1".into(), "2.5".into()]);
        let p = t.save_json("unit-test-table").unwrap();
        let content = std::fs::read_to_string(&p).unwrap();
        assert_eq!(
            content,
            "{\"title\":\"t\",\"headers\":[\"a\",\"b\"],\"rows\":[[\"1\",\"2.5\"]]}"
        );
    }
}
