//! Benchmark harness for the Rasengan reproduction.
//!
//! One binary per table/figure of the paper's evaluation (see
//! `DESIGN.md`'s per-experiment index). Shared machinery lives here:
//!
//! * [`report`] — fixed-width table printing + CSV output under
//!   `target/rasengan-reports/`.
//! * [`runners`] — uniform "run algorithm X on problem P" adapters
//!   returning one comparable row for all four algorithms.
//! * [`settings`] — fast/full mode handling (`--full` reproduces the
//!   paper's iteration budgets; the default is the artifact-style
//!   scaled-down reproduce mode).
//! * [`replay`] — deterministic workload manifests for the loadgen
//!   `--replay` arm (seeded Poisson arrivals over the full corpus).

pub mod replay;
pub mod report;
pub mod runners;
pub mod settings;

pub use report::Table;
pub use runners::{run_algorithm, AlgoResult, Algorithm};
pub use settings::RunSettings;
