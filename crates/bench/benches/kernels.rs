//! Criterion micro-benchmarks of the kernels the paper's figures depend
//! on: transition application (sparse vs dense — the DESIGN.md ablation
//! of the simulation backend), exact nullspace computation, Hamiltonian
//! simplification, chain construction with pruning, purification, and
//! shot apportionment.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rasengan_core::prune::{build_chain, ChainConfig};
use rasengan_core::purify::purify_counts;
use rasengan_core::{apportion_shots, problem_basis, simplify_basis};
use rasengan_math::nullspace;
use rasengan_problems::registry::{benchmark, BenchmarkId as Bid};
use rasengan_qsim::sparse::label_from_bits;
use rasengan_qsim::synth::tau_circuit;
use rasengan_qsim::{DenseState, SparseState, Transition};
use std::collections::BTreeMap;

/// Sparse (analytic) vs dense (gate circuit) application of one
/// transition operator — the backend-choice ablation.
fn bench_transition_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("transition_apply");
    for &n in &[8usize, 12, 16] {
        let mut u = vec![0i64; n];
        u[0] = 1;
        u[n / 2] = -1;
        u[n - 1] = 1;
        let tr = Transition::from_u(&u);
        group.bench_with_input(BenchmarkId::new("sparse", n), &n, |b, _| {
            b.iter(|| {
                let mut s = SparseState::basis_state(n, (1u128 << (n / 2)) | (1 << (n - 1)));
                s.apply_transition(black_box(&tr), 0.7);
                black_box(s.support_size())
            })
        });
        group.bench_with_input(BenchmarkId::new("dense_circuit", n), &n, |b, _| {
            let circuit = tau_circuit(&u, 0.7, n);
            b.iter(|| {
                let mut s = DenseState::basis_state(n, (1u64 << (n / 2)) | (1 << (n - 1)));
                s.run(black_box(&circuit));
                black_box(s.norm_sqr())
            })
        });
    }
    group.finish();
}

/// Sparse scaling far past dense reach (the Fig. 10 regime).
fn bench_sparse_large_registers(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_large");
    for &n in &[32usize, 64, 105] {
        let mut u = vec![0i64; n];
        u[0] = 1;
        u[n - 1] = -1;
        let tr = Transition::from_u(&u);
        group.bench_with_input(BenchmarkId::new("qubits", n), &n, |b, _| {
            b.iter(|| {
                let mut s = SparseState::basis_state(n, 1u128 << (n - 1));
                for _ in 0..16 {
                    s.apply_transition(black_box(&tr), 0.3);
                }
                black_box(s.support_size())
            })
        });
    }
    group.finish();
}

/// Exact rational nullspace of benchmark constraint systems.
fn bench_nullspace(c: &mut Criterion) {
    let mut group = c.benchmark_group("nullspace");
    for name in ["F2", "K2", "S3", "G3"] {
        let p = benchmark(Bid::parse(name).unwrap());
        group.bench_function(name, |b| {
            b.iter(|| black_box(nullspace(black_box(p.constraints()))))
        });
    }
    group.finish();
}

/// Algorithm 1 on benchmark bases.
fn bench_simplify(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplify");
    for name in ["F3", "S4", "G4"] {
        let p = benchmark(Bid::parse(name).unwrap());
        let basis = problem_basis(&p).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| black_box(simplify_basis(black_box(&basis))))
        });
    }
    group.finish();
}

/// Chain construction with pruning + early stop.
fn bench_chain_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_build");
    for name in ["F2", "K3", "S4"] {
        let p = benchmark(Bid::parse(name).unwrap());
        let basis = problem_basis(&p).unwrap();
        let seed = label_from_bits(p.initial_feasible().unwrap());
        group.bench_function(format!("{name}_pruned"), |b| {
            b.iter(|| {
                black_box(build_chain(
                    black_box(&basis),
                    seed,
                    &ChainConfig::default(),
                ))
            })
        });
        group.bench_function(format!("{name}_unpruned"), |b| {
            let cfg = ChainConfig {
                prune: false,
                early_stop: false,
                ..ChainConfig::default()
            };
            b.iter(|| black_box(build_chain(black_box(&basis), seed, &cfg)))
        });
    }
    group.finish();
}

/// Purification of a measured distribution (the §4.3 matrix-vector
/// check the paper times at 0.05 ms).
fn bench_purification(c: &mut Criterion) {
    let p = benchmark(Bid::parse("S4").unwrap());
    // A synthetic count map mixing feasible and infeasible labels.
    let feasible = rasengan_problems::enumerate_feasible(&p);
    let mut counts: BTreeMap<u128, usize> = BTreeMap::new();
    for (i, x) in feasible.iter().enumerate() {
        counts.insert(label_from_bits(x), 10 + i);
    }
    for i in 0..64u128 {
        counts.entry(i * 37 % (1 << p.n_vars())).or_insert(3);
    }
    c.bench_function("purify_S4", |b| {
        b.iter(|| black_box(purify_counts(black_box(&p), black_box(&counts))))
    });
}

/// Measurement sampling — regression guard on the CDF-based samplers.
/// The dense path was O(shots · 2^n) (a full linear scan per shot) and
/// the sparse path rebuilt and re-sorted its support per draw; both now
/// build a CDF once and binary-search per shot.
fn bench_sampling(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut group = c.benchmark_group("sampling");
    // Dense: uniform 16-qubit superposition, 4096 shots.
    let n = 16usize;
    let mut circuit = rasengan_qsim::Circuit::new(n);
    for q in 0..n {
        circuit.h(q);
    }
    let dense = DenseState::from_circuit(&circuit);
    group.bench_function("dense_16q_4096shots", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(dense.sample(4096, &mut rng)))
    });

    // Sparse: multi-label support grown by transitions, 4096 shots.
    let mut u = vec![0i64; 32];
    u[0] = 1;
    u[31] = -1;
    let mut sparse = SparseState::basis_state(32, 1u128 << 31);
    for _ in 0..12 {
        sparse.apply_transition(&Transition::from_u(&u), 0.4);
    }
    group.bench_function("sparse_32q_4096shots", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(sparse.sample(4096, &mut rng)))
    });
    // Single-draw path: the prepared sampler amortizes the CDF build.
    group.bench_function("sparse_4096_draws", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let sampler = sparse.prepared_sampler();
        b.iter(|| {
            let mut acc = 0u128;
            for _ in 0..4096 {
                acc ^= sampler.draw(&mut rng);
            }
            black_box(acc)
        })
    });
    group.finish();
}

/// Largest-remainder shot apportionment.
fn bench_apportion(c: &mut Criterion) {
    let probs: Vec<f64> = (1..=256).map(|i| 1.0 / i as f64).collect();
    c.bench_function("apportion_256_states", |b| {
        b.iter(|| black_box(apportion_shots(black_box(&probs), 1024)))
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets =
        bench_transition_backends,
        bench_sparse_large_registers,
        bench_nullspace,
        bench_simplify,
        bench_chain_build,
        bench_purification,
        bench_sampling,
        bench_apportion,
}
criterion_main!(kernels);
