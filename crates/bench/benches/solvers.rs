//! Criterion benchmarks of whole solver iterations: one objective
//! evaluation (segmented execution + purification) for Rasengan, one
//! circuit evaluation for each baseline. These are the per-iteration
//! costs behind the Table 1 / Fig. 12 latency comparisons.

use criterion::BenchmarkId as CriterionId;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rasengan_baselines::common::run_dense;
use rasengan_baselines::{penalized_qubo, qubo_to_ising, BaselineConfig, Hea, PQaoa};
use rasengan_core::metrics::penalty_lambda;
use rasengan_core::{Rasengan, RasenganConfig};
use rasengan_problems::registry::{benchmark, BenchmarkId};
use rasengan_qsim::NoiseModel;

/// One full Rasengan solve at a tiny iteration budget (end-to-end cost).
fn bench_rasengan_solve(c: &mut Criterion) {
    let p = benchmark(BenchmarkId::parse("F1").unwrap());
    c.bench_function("rasengan_solve_F1_10iters", |b| {
        b.iter(|| {
            let out = Rasengan::new(
                RasenganConfig::default()
                    .with_seed(1)
                    .with_max_iterations(10),
            )
            .solve(black_box(&p))
            .unwrap();
            black_box(out.arg)
        })
    });
}

/// One shot-based Rasengan execution (the quantum part of an iteration).
fn bench_rasengan_execution(c: &mut Criterion) {
    let p = benchmark(BenchmarkId::parse("F2").unwrap());
    c.bench_function("rasengan_exec_F2_1024shots", |b| {
        b.iter(|| {
            let out = Rasengan::new(
                RasenganConfig::default()
                    .with_seed(1)
                    .with_shots(1024)
                    .with_max_iterations(1),
            )
            .solve(black_box(&p))
            .unwrap();
            black_box(out.total_shots)
        })
    });
}

/// Fig. 14-style noisy trajectory workload at 1 vs 4 threads. The
/// deterministic engine derives one RNG stream per global shot index,
/// so the two runs produce identical distributions — only the
/// wall-clock differs (the acceptance target is ≥2× at 4 threads).
fn bench_noisy_thread_scaling(c: &mut Criterion) {
    let p = benchmark(BenchmarkId::parse("F1").unwrap());
    let mut group = c.benchmark_group("rasengan_noisy_threads");
    group.sample_size(10);
    for &threads in &[1usize, 4] {
        group.bench_with_input(
            CriterionId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let out = Rasengan::new(
                        RasenganConfig::default()
                            .with_seed(1)
                            .with_noise(NoiseModel::depolarizing(2e-3))
                            .with_shots(1024)
                            .with_max_iterations(2)
                            .with_threads(threads),
                    )
                    .solve(black_box(&p))
                    .unwrap();
                    black_box(out.total_shots)
                })
            },
        );
    }
    group.finish();
}

/// One dense HEA circuit evaluation (exact probabilities).
fn bench_hea_evaluation(c: &mut Criterion) {
    let p = benchmark(BenchmarkId::parse("F1").unwrap());
    let n = p.n_vars();
    let params = vec![0.3; Hea::n_params(n, 5)];
    let cfg = BaselineConfig::default();
    c.bench_function("hea_circuit_eval_F1", |b| {
        let mut rng = StdRng::seed_from_u64(0);
        b.iter(|| {
            let circuit = Hea::circuit(n, 5, black_box(&params));
            black_box(run_dense(&circuit, &cfg, &mut rng))
        })
    });
}

/// One dense P-QAOA circuit evaluation.
fn bench_pqaoa_evaluation(c: &mut Criterion) {
    let p = benchmark(BenchmarkId::parse("F1").unwrap());
    let ising = qubo_to_ising(&penalized_qubo(&p, penalty_lambda(&p)));
    let cfg = BaselineConfig::default();
    c.bench_function("pqaoa_circuit_eval_F1", |b| {
        let mut rng = StdRng::seed_from_u64(0);
        b.iter(|| {
            let circuit = PQaoa::circuit(
                &ising,
                p.n_vars(),
                &[0.3, 0.5, 0.2, 0.4, 0.1, 0.6, 0.3, 0.2, 0.4, 0.5],
                &[],
            );
            black_box(run_dense(&circuit, &cfg, &mut rng))
        })
    });
}

criterion_group! {
    name = solvers;
    config = Criterion::default().sample_size(10);
    targets =
        bench_rasengan_solve,
        bench_rasengan_execution,
        bench_noisy_thread_scaling,
        bench_hea_evaluation,
        bench_pqaoa_evaluation,
}
criterion_main!(solvers);
