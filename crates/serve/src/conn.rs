//! Per-connection state machine for the event-driven front end.
//!
//! A connection moves through three states:
//!
//! ```text
//! Reading --(PING/STATS or parse error)--> Writing --> closed
//! Reading --(complete SOLVE request)----> Solving --> Writing --> closed
//! ```
//!
//! * **Reading** — the reactor feeds whatever the socket yields into an
//!   [`IncrementalParser`]; partial reads simply leave the parser
//!   mid-request until more bytes arrive.
//! * **Solving** — the parsed request is on the worker queue. The
//!   socket is deregistered from epoll: nothing the client sends can
//!   advance the request, and solver threads never touch the socket.
//! * **Writing** — the rendered reply drains through non-blocking
//!   writes with partial-write resumption; when the last byte is out
//!   the connection closes (the protocol is one request per
//!   connection; clients read to EOF).
//!
//! Methods here only move bytes and state; epoll registration, timers,
//! and counters belong to the reactor.

use std::io::{Read, Write};
use std::net::TcpStream;

use crate::protocol::{IncrementalParser, ParseProgress, Reply, RequestError};

/// Where a connection is in its request/response lifecycle.
pub(crate) enum ConnState {
    /// Accumulating request bytes into the incremental parser. Boxed:
    /// the parser carries per-verb accumulators (solve body, gossip
    /// member table) that dwarf the payload-free states.
    Reading(Box<IncrementalParser>),
    /// Request handed to the worker pool; socket quiescent.
    Solving,
    /// Draining the rendered reply.
    Writing,
}

/// [`ConnState`] stripped of its payload — a `Copy` view the reactor
/// can hold while re-borrowing the connection table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Phase {
    /// See [`ConnState::Reading`].
    Reading,
    /// See [`ConnState::Solving`].
    Solving,
    /// See [`ConnState::Writing`].
    Writing,
}

/// What a readable-event drive produced.
pub(crate) enum ReadOutcome {
    /// The socket is drained and the request is still incomplete.
    /// `progressed` is true when any bytes arrived (the reactor resets
    /// the idle deadline on progress, mirroring the per-read semantics
    /// of the blocking path's `SO_RCVTIMEO`).
    NeedMore { progressed: bool },
    /// The parser completed: a bare verb or a full `SOLVE` request.
    Parsed(ParseProgress),
    /// The request is invalid (or truncated by EOF); reply and close.
    Invalid(RequestError),
    /// The connection failed at the transport level; close silently.
    Peer,
}

/// What a writable-event drive produced.
pub(crate) enum WriteOutcome {
    /// Every reply byte is out; close the connection.
    Done,
    /// The kernel buffer filled mid-reply; wait for writability.
    /// `progressed` is true when any bytes moved this drive.
    Blocked { progressed: bool },
    /// The peer is gone; close without finishing.
    Peer,
}

/// One client connection owned by the reactor.
pub(crate) struct Conn {
    pub(crate) stream: TcpStream,
    pub(crate) state: ConnState,
    /// Rendered reply bytes being drained in `Writing`.
    out: Vec<u8>,
    /// How much of `out` has been written.
    written: usize,
    /// The epoll interest mask currently registered for this socket
    /// (`None` when deregistered, as in `Solving`). Maintained by the
    /// reactor; stored here so re-arming knows whether to ADD or MOD.
    pub(crate) interest: Option<u32>,
    /// Wheel-validated absolute deadline for the current phase; `None`
    /// while solving (a long solve is not an IO stall).
    pub(crate) deadline: Option<std::time::Instant>,
}

impl Conn {
    /// Wraps a freshly-accepted non-blocking stream.
    pub(crate) fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            state: ConnState::Reading(Box::default()),
            out: Vec::new(),
            written: 0,
            interest: None,
            deadline: None,
        }
    }

    /// The current lifecycle phase.
    pub(crate) fn phase(&self) -> Phase {
        match self.state {
            ConnState::Reading(_) => Phase::Reading,
            ConnState::Solving => Phase::Solving,
            ConnState::Writing => Phase::Writing,
        }
    }

    /// Marks the request as handed to the worker pool and clears the
    /// IO deadline (a long solve is not an IO stall).
    pub(crate) fn solving(&mut self) {
        self.state = ConnState::Solving;
        self.deadline = None;
    }

    /// Whether the request's verb line was parsed — decides how a
    /// timeout is attributed (stalled request vs anonymous bad
    /// connection), matching the threaded front end's counters.
    pub(crate) fn verb_seen(&self) -> bool {
        match &self.state {
            ConnState::Reading(parser) => parser.verb_seen(),
            _ => true,
        }
    }

    /// Drives reads until the socket would block, EOF, or the parser
    /// resolves. Call only in `Reading`.
    pub(crate) fn handle_readable(&mut self, scratch: &mut [u8]) -> ReadOutcome {
        let mut progressed = false;
        loop {
            let parser = match &mut self.state {
                ConnState::Reading(parser) => parser,
                _ => return ReadOutcome::NeedMore { progressed },
            };
            match self.stream.read(scratch) {
                Ok(0) => {
                    return match parser.eof() {
                        Ok(progress) => ReadOutcome::Parsed(progress),
                        Err(err) => ReadOutcome::Invalid(err),
                    }
                }
                Ok(n) => {
                    progressed = true;
                    match parser.feed(&scratch[..n]) {
                        Ok(ParseProgress::More) => {}
                        Ok(progress) => return ReadOutcome::Parsed(progress),
                        Err(err) => return ReadOutcome::Invalid(err),
                    }
                }
                Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                    return ReadOutcome::NeedMore { progressed }
                }
                Err(err) if err.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return ReadOutcome::Peer,
            }
        }
    }

    /// Stages a reply and switches to `Writing`. The caller follows up
    /// with [`handle_writable`](Conn::handle_writable) to start the
    /// drain immediately rather than waiting for an epoll event.
    pub(crate) fn begin_reply(&mut self, reply: &Reply) {
        self.out = reply.render().into_bytes();
        self.written = 0;
        self.state = ConnState::Writing;
    }

    /// Drives writes until done or the socket would block. Call only
    /// in `Writing`.
    pub(crate) fn handle_writable(&mut self) -> WriteOutcome {
        let mut progressed = false;
        while self.written < self.out.len() {
            match self.stream.write(&self.out[self.written..]) {
                Ok(0) => return WriteOutcome::Peer,
                Ok(n) => {
                    self.written += n;
                    progressed = true;
                }
                Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                    return WriteOutcome::Blocked { progressed }
                }
                Err(err) if err.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return WriteOutcome::Peer,
            }
        }
        let _ = self.stream.flush();
        WriteOutcome::Done
    }
}
