//! Crash-safe on-disk warm-state tier below the in-memory LRUs.
//!
//! A [`Persist`] store keeps two record families under one state
//! directory, keyed by the problem fingerprint:
//!
//! * `outcomes/<keyhash>.rec` — finished [`Outcome`]s under their full
//!   [`OutcomeKey`] (fingerprint plus every training knob; thread and
//!   batch counts excluded, exactly like the in-memory result cache).
//! * `prepared/<fingerprint>.rec` — compiled [`Prepared`] artifacts
//!   keyed on fingerprint alone.
//!
//! # Record format
//!
//! ```text
//! magic  "RSGN"        4 bytes
//! kind   u8            1 = outcome, 2 = prepared
//! format u16 LE        codec version gate
//! length u64 LE        payload byte count
//! check  u64 LE        FNV-1a 64 over the payload
//! payload               versioned codec bytes (core::encode)
//! ```
//!
//! The payload embeds its own full key (the encoded [`OutcomeKey`], or
//! the `u128` fingerprint), so a filename-hash collision is detected by
//! comparison and served as a miss — never as another key's data.
//!
//! # Crash safety
//!
//! Writes go through `tmp/<name>.<nonce>.tmp` → `write` → `fsync` →
//! atomic `rename` into place, then an fsync of the containing
//! directory. A `kill -9` at any instant leaves either the old record
//! or the new one; the only residue is a stale file under `tmp/`,
//! which the next [`Persist::open`] deletes.
//!
//! # Quarantine
//!
//! [`Persist::open`] runs a recovery scan: every record is fully
//! validated (magic, kind, version, length, checksum, payload decode)
//! and anything failing a gate is *renamed aside* into `quarantine/`
//! and counted — never deleted (it is evidence), never served. The
//! runtime read path applies the same gates, so records corrupted
//! after startup degrade to a miss-plus-quarantine and the caller
//! recomputes. Version-skewed records take the same path: there is no
//! migration, because every record is a cache of deterministic
//! computation.
//!
//! # Fault injection
//!
//! In the spirit of `qsim::fault`, a [`StorageFaultPlan`] corrupts
//! record bytes *as they land on disk*, as a pure function of the plan
//! seed and the record name — torn writes, tail truncations, single
//! bit flips, version skews. The corruption matrix in CI replays the
//! exact same faults on every run.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use rasengan_core::encode::{
    decode_outcome, decode_prepared, encode_outcome, encode_prepared, OUTCOME_FORMAT,
    PREPARED_FORMAT,
};
use rasengan_core::solver::{Outcome, Prepared};
use rasengan_obs::metrics::Registry;
use rasengan_qsim::parallel::derive_seed;
use rasengan_qsim::wire::{fnv64, WireError, WireReader, WireWriter};

const MAGIC: [u8; 4] = *b"RSGN";
const KIND_OUTCOME: u8 = 1;
const KIND_PREPARED: u8 = 2;
/// magic + kind + format + length + checksum.
const HEADER_LEN: usize = 4 + 1 + 2 + 8 + 8;

const DIR_OUTCOMES: &str = "outcomes";
const DIR_PREPARED: &str = "prepared";
const DIR_QUARANTINE: &str = "quarantine";
const DIR_TMP: &str = "tmp";

/// Everything that identifies a persisted outcome: the result-cache
/// key minus the `trace` flag — only untraced outcomes are persisted
/// (span trees are observability data, regenerated on demand).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct OutcomeKey {
    /// Canonical problem fingerprint.
    pub fingerprint: u128,
    /// Sampling seed.
    pub seed: u64,
    /// Requested shots, if the request pinned them.
    pub shots: Option<usize>,
    /// Requested iteration cap, if pinned.
    pub iterations: Option<usize>,
    /// Retry budget.
    pub retries: usize,
    /// Whether graceful degradation was enabled.
    pub degrade: bool,
    /// Wall-clock deadline in milliseconds, if any.
    pub deadline_ms: Option<u64>,
}

impl OutcomeKey {
    fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u128(self.fingerprint);
        w.u64(self.seed);
        w.bool(self.shots.is_some());
        w.usize(self.shots.unwrap_or(0));
        w.bool(self.iterations.is_some());
        w.usize(self.iterations.unwrap_or(0));
        w.usize(self.retries);
        w.bool(self.degrade);
        w.bool(self.deadline_ms.is_some());
        w.u64(self.deadline_ms.unwrap_or(0));
        w.into_bytes()
    }

    fn decode(r: &mut WireReader) -> Result<OutcomeKey, WireError> {
        let fingerprint = r.u128()?;
        let seed = r.u64()?;
        let has_shots = r.bool()?;
        let shots = r.usize()?;
        let has_iterations = r.bool()?;
        let iterations = r.usize()?;
        let retries = r.usize()?;
        let degrade = r.bool()?;
        let has_deadline = r.bool()?;
        let deadline_ms = r.u64()?;
        Ok(OutcomeKey {
            fingerprint,
            seed,
            shots: has_shots.then_some(shots),
            iterations: has_iterations.then_some(iterations),
            retries,
            degrade,
            deadline_ms: has_deadline.then_some(deadline_ms),
        })
    }

    /// The record file stem: hex of FNV-1a 64 over the encoded key.
    /// Collisions are resolved by the key embedded in the payload.
    fn file_stem(&self) -> String {
        format!("{:016x}", fnv64(&self.encode()))
    }
}

/// The storage fault classes, mirroring the corruption modes real
/// disks and crashes produce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageFault {
    /// The record is cut at a seed-derived interior offset, as a crash
    /// mid-write would leave it without the atomic-rename protocol.
    TornWrite,
    /// A seed-derived number of tail bytes is dropped.
    Truncation,
    /// One seed-derived bit is flipped.
    BitFlip,
    /// The header's format version is bumped: the payload is intact
    /// and the checksum passes, so only the version gate catches it.
    VersionSkew,
}

impl std::fmt::Display for StorageFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StorageFault::TornWrite => "torn-write",
            StorageFault::Truncation => "truncation",
            StorageFault::BitFlip => "bit-flip",
            StorageFault::VersionSkew => "version-skew",
        })
    }
}

/// Domain tags keeping the fire/parameter streams disjoint.
const TAG_FIRE: u64 = 0x5707_0001;
const TAG_PARAM: u64 = 0x5707_0002;

/// A deterministic, seed-derived schedule of storage corruption.
/// Every decision is a pure function of `(seed, record name)`, so a
/// corrupted record in one run is corrupted identically — same offset,
/// same bit — in every run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StorageFaultPlan {
    /// Base seed of the fault schedule.
    pub seed: u64,
    /// The fault class to inject.
    pub kind: StorageFault,
    /// Per-record-write probability of injection (clamped to `[0, 1]`,
    /// NaN → 0).
    pub rate: f64,
}

impl StorageFaultPlan {
    /// A plan injecting `kind` on every write.
    pub fn every_write(seed: u64, kind: StorageFault) -> Self {
        StorageFaultPlan {
            seed,
            kind,
            rate: 1.0,
        }
    }

    /// Sets the per-write injection probability.
    #[must_use]
    pub fn with_rate(mut self, rate: f64) -> Self {
        self.rate = if rate.is_nan() {
            0.0
        } else {
            rate.clamp(0.0, 1.0)
        };
        self
    }

    fn site(&self, name: &str, tag: u64) -> u64 {
        derive_seed(derive_seed(self.seed, tag), fnv64(name.as_bytes()))
    }

    fn fires(&self, name: &str) -> bool {
        let unit = (self.site(name, TAG_FIRE) >> 11) as f64 / (1u64 << 53) as f64;
        unit < self.rate
    }

    /// Applies the fault to the record bytes about to land on disk.
    /// Returns the (possibly corrupted) bytes and whether a fault
    /// fired.
    fn apply(&self, name: &str, mut bytes: Vec<u8>) -> (Vec<u8>, bool) {
        if bytes.len() <= 1 || !self.fires(name) {
            return (bytes, false);
        }
        let h = self.site(name, TAG_PARAM);
        match self.kind {
            StorageFault::TornWrite => {
                let cut = 1 + (h as usize) % (bytes.len() - 1);
                bytes.truncate(cut);
            }
            StorageFault::Truncation => {
                let drop = 1 + (h as usize) % 16;
                bytes.truncate(bytes.len().saturating_sub(drop));
            }
            StorageFault::BitFlip => {
                let bit = (h as usize) % (bytes.len() * 8);
                bytes[bit / 8] ^= 1 << (bit % 8);
            }
            StorageFault::VersionSkew => {
                // Format version lives at bytes 5..7 (after magic+kind).
                if bytes.len() >= 7 {
                    let skewed =
                        u16::from_le_bytes([bytes[5], bytes[6]]).wrapping_add(1 + (h as u16 % 7));
                    bytes[5..7].copy_from_slice(&skewed.to_le_bytes());
                }
            }
        }
        (bytes, true)
    }
}

/// Why a record failed validation — the quarantine reason, also used
/// as a per-reason metrics suffix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RecordGate {
    Header,
    Version,
    Checksum,
    Decode,
}

impl RecordGate {
    fn tag(self) -> &'static str {
        match self {
            RecordGate::Header => "header",
            RecordGate::Version => "version",
            RecordGate::Checksum => "checksum",
            RecordGate::Decode => "decode",
        }
    }
}

fn encode_record(kind: u8, format: u16, payload: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
    bytes.extend_from_slice(&MAGIC);
    bytes.push(kind);
    bytes.extend_from_slice(&format.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&fnv64(payload).to_le_bytes());
    bytes.extend_from_slice(payload);
    bytes
}

/// Validates header, kind, version, length, and checksum; returns the
/// payload slice. Decode gates run above this, on the payload.
fn open_record(bytes: &[u8], kind: u8, format: u16) -> Result<&[u8], RecordGate> {
    if bytes.len() < HEADER_LEN || bytes[0..4] != MAGIC || bytes[4] != kind {
        return Err(RecordGate::Header);
    }
    let found = u16::from_le_bytes([bytes[5], bytes[6]]);
    if found != format {
        return Err(RecordGate::Version);
    }
    let length = u64::from_le_bytes(bytes[7..15].try_into().unwrap());
    let payload = &bytes[HEADER_LEN..];
    if length != payload.len() as u64 {
        return Err(RecordGate::Header);
    }
    let check = u64::from_le_bytes(bytes[15..23].try_into().unwrap());
    if fnv64(payload) != check {
        return Err(RecordGate::Checksum);
    }
    Ok(payload)
}

/// Counters of one store, mirrored into the obs registry under
/// `persist.*` when one is attached.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Disk-tier reads that produced a validated record.
    pub disk_hits: u64,
    /// Disk-tier reads that found nothing (or a key-hash collision).
    pub disk_misses: u64,
    /// Records renamed into `quarantine/` after failing a gate.
    pub quarantined: u64,
    /// Records durably written (temp + fsync + rename completed).
    pub flushes: u64,
    /// Record writes the fault plan corrupted on the way down.
    pub faults_injected: u64,
    /// Records that passed every gate in the startup recovery scan.
    pub recovered: u64,
    /// Stale `tmp/` files deleted at startup (crash residue).
    pub tmp_cleaned: u64,
}

/// The crash-safe on-disk store. All operations are `&self` and
/// thread-safe; the atomic-rename protocol makes concurrent writers of
/// the same record last-writer-wins with no torn state.
pub struct Persist {
    root: PathBuf,
    faults: Option<StorageFaultPlan>,
    registry: Option<&'static Registry>,
    nonce: AtomicU64,
    disk_hits: AtomicU64,
    disk_misses: AtomicU64,
    quarantined: AtomicU64,
    flushes: AtomicU64,
    faults_injected: AtomicU64,
    recovered: AtomicU64,
    tmp_cleaned: AtomicU64,
}

impl Persist {
    /// Opens (creating if needed) a state directory and runs the
    /// recovery scan: stale temp files are deleted, every record is
    /// fully validated, and failures are quarantined and counted.
    ///
    /// # Errors
    ///
    /// Returns the underlying error if the directory tree cannot be
    /// created or listed. Individual bad records are never an error —
    /// they are quarantined.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Persist> {
        Self::open_with(root, None, None)
    }

    /// [`Persist::open`] with an optional fault plan (applied to every
    /// subsequent write) and an optional metrics registry to mirror
    /// the counters into.
    pub fn open_with(
        root: impl Into<PathBuf>,
        faults: Option<StorageFaultPlan>,
        registry: Option<&'static Registry>,
    ) -> io::Result<Persist> {
        let root = root.into();
        for sub in [DIR_OUTCOMES, DIR_PREPARED, DIR_QUARANTINE, DIR_TMP] {
            fs::create_dir_all(root.join(sub))?;
        }
        let store = Persist {
            root,
            faults,
            registry,
            nonce: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            disk_misses: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            faults_injected: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
            tmp_cleaned: AtomicU64::new(0),
        };
        store.recover()?;
        Ok(store)
    }

    /// The state directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// A snapshot of the store counters.
    pub fn stats(&self) -> PersistStats {
        PersistStats {
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_misses: self.disk_misses.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            recovered: self.recovered.load(Ordering::Relaxed),
            tmp_cleaned: self.tmp_cleaned.load(Ordering::Relaxed),
        }
    }

    fn bump(&self, counter: &AtomicU64, name: &str) {
        counter.fetch_add(1, Ordering::Relaxed);
        if let Some(registry) = self.registry {
            registry.counter_add(name, 1);
        }
    }

    /// Stores a finished outcome under its full key. Traced outcomes
    /// are the caller's responsibility to exclude (the codec drops the
    /// tree, so persisting one would serve trace-less responses to
    /// traced requests).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; the store is unchanged (the old
    /// record, if any, is intact).
    pub fn store_outcome(&self, key: &OutcomeKey, outcome: &Outcome) -> io::Result<()> {
        let mut payload = key.encode();
        payload.extend_from_slice(&encode_outcome(outcome));
        self.write_record(
            DIR_OUTCOMES,
            &key.file_stem(),
            KIND_OUTCOME,
            OUTCOME_FORMAT,
            &payload,
        )
    }

    /// Loads the outcome stored under `key`, or `None` on miss — where
    /// "miss" includes a missing file, a key-hash collision, and any
    /// record failing a validation gate (which is also quarantined).
    pub fn load_outcome(&self, key: &OutcomeKey) -> Option<Outcome> {
        let stem = key.file_stem();
        let payload = self.read_record(DIR_OUTCOMES, &stem, KIND_OUTCOME, OUTCOME_FORMAT)?;
        let mut r = WireReader::new(&payload);
        let outcome = match OutcomeKey::decode(&mut r) {
            Ok(stored) if stored == *key => match decode_outcome(r.rest()) {
                Ok(outcome) => outcome,
                Err(_) => {
                    self.quarantine(DIR_OUTCOMES, &stem, RecordGate::Decode);
                    return None;
                }
            },
            Ok(_) => {
                // A valid record for a different key sharing the hash:
                // a miss, not corruption.
                self.bump(&self.disk_misses, "persist.disk_miss");
                return None;
            }
            Err(_) => {
                self.quarantine(DIR_OUTCOMES, &stem, RecordGate::Decode);
                return None;
            }
        };
        self.bump(&self.disk_hits, "persist.disk_hit");
        Some(outcome)
    }

    /// Stores a compiled artifact under the problem fingerprint.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; the old record (if any) is intact.
    pub fn store_prepared(&self, fingerprint: u128, prepared: &Prepared) -> io::Result<()> {
        let mut payload = WireWriter::new();
        payload.u128(fingerprint);
        let mut payload = payload.into_bytes();
        payload.extend_from_slice(&encode_prepared(prepared));
        self.write_record(
            DIR_PREPARED,
            &format!("{fingerprint:032x}"),
            KIND_PREPARED,
            PREPARED_FORMAT,
            &payload,
        )
    }

    /// Loads the compiled artifact for `fingerprint`, or `None` on
    /// miss (missing, mismatched, or quarantined).
    pub fn load_prepared(&self, fingerprint: u128) -> Option<Prepared> {
        let stem = format!("{fingerprint:032x}");
        let payload = self.read_record(DIR_PREPARED, &stem, KIND_PREPARED, PREPARED_FORMAT)?;
        let mut r = WireReader::new(&payload);
        let prepared = match r.u128() {
            Ok(stored) if stored == fingerprint => match decode_prepared(r.rest()) {
                Ok(prepared) => prepared,
                Err(_) => {
                    self.quarantine(DIR_PREPARED, &stem, RecordGate::Decode);
                    return None;
                }
            },
            _ => {
                self.quarantine(DIR_PREPARED, &stem, RecordGate::Decode);
                return None;
            }
        };
        self.bump(&self.disk_hits, "persist.disk_hit");
        Some(prepared)
    }

    /// Reads and gate-checks one record; quarantines on failure,
    /// counts a miss when the file does not exist.
    fn read_record(&self, sub: &str, stem: &str, kind: u8, format: u16) -> Option<Vec<u8>> {
        let path = self.root.join(sub).join(format!("{stem}.rec"));
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(_) => {
                self.bump(&self.disk_misses, "persist.disk_miss");
                return None;
            }
        };
        match open_record(&bytes, kind, format) {
            Ok(payload) => Some(payload.to_vec()),
            Err(gate) => {
                self.quarantine(sub, stem, gate);
                None
            }
        }
    }

    /// Temp-file + fsync + atomic-rename write of one record; the
    /// fault plan (if armed) corrupts the bytes on the way down.
    fn write_record(
        &self,
        sub: &str,
        stem: &str,
        kind: u8,
        format: u16,
        payload: &[u8],
    ) -> io::Result<()> {
        let record = encode_record(kind, format, payload);
        let record = match &self.faults {
            Some(plan) => {
                let (bytes, fired) = plan.apply(stem, record);
                if fired {
                    self.bump(&self.faults_injected, "persist.fault_injected");
                }
                bytes
            }
            None => record,
        };
        let nonce = self.nonce.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .root
            .join(DIR_TMP)
            .join(format!("{stem}.{}.{nonce}.tmp", std::process::id()));
        {
            let mut file = File::create(&tmp)?;
            file.write_all(&record)?;
            file.sync_all()?;
        }
        let dir = self.root.join(sub);
        let result = fs::rename(&tmp, dir.join(format!("{stem}.rec")));
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
            return result;
        }
        // Make the rename itself durable: fsync the directory entry.
        if let Ok(handle) = File::open(&dir) {
            let _ = handle.sync_all();
        }
        self.bump(&self.flushes, "persist.flush");
        Ok(())
    }

    /// Renames a failed record aside into `quarantine/` and counts it,
    /// total and per-gate. The record is kept as evidence, under a
    /// name that says which family and which gate failed.
    fn quarantine(&self, sub: &str, stem: &str, gate: RecordGate) {
        let from = self.root.join(sub).join(format!("{stem}.rec"));
        let to = self
            .root
            .join(DIR_QUARANTINE)
            .join(format!("{sub}.{stem}.{}.rec", gate.tag()));
        let _ = fs::rename(&from, &to);
        self.bump(&self.quarantined, "persist.quarantined");
        if let Some(registry) = self.registry {
            registry.counter_add(&format!("persist.quarantine.{}", gate.tag()), 1);
        }
    }

    /// Startup recovery: delete stale temp files (crash residue), then
    /// validate every record end-to-end — header gates *and* payload
    /// decode — quarantining failures so the serving path starts from
    /// a fully trusted index.
    fn recover(&self) -> io::Result<()> {
        for entry in fs::read_dir(self.root.join(DIR_TMP))? {
            let entry = entry?;
            if fs::remove_file(entry.path()).is_ok() {
                self.bump(&self.tmp_cleaned, "persist.tmp_cleaned");
            }
        }
        for (sub, kind, format) in [
            (DIR_OUTCOMES, KIND_OUTCOME, OUTCOME_FORMAT),
            (DIR_PREPARED, KIND_PREPARED, PREPARED_FORMAT),
        ] {
            let mut stems: Vec<String> = fs::read_dir(self.root.join(sub))?
                .filter_map(|entry| {
                    let name = entry.ok()?.file_name().into_string().ok()?;
                    Some(name.strip_suffix(".rec")?.to_string())
                })
                .collect();
            // Deterministic scan order, so quarantine counters and
            // file names replay identically under fault injection.
            stems.sort();
            for stem in stems {
                let path = self.root.join(sub).join(format!("{stem}.rec"));
                let Ok(bytes) = fs::read(&path) else { continue };
                match open_record(&bytes, kind, format) {
                    Ok(payload) => {
                        let decoded = match kind {
                            KIND_OUTCOME => {
                                let mut r = WireReader::new(payload);
                                OutcomeKey::decode(&mut r)
                                    .and_then(|_| decode_outcome(r.rest()))
                                    .map(|_| ())
                            }
                            _ => {
                                let mut r = WireReader::new(payload);
                                r.u128().and_then(|_| decode_prepared(r.rest())).map(|_| ())
                            }
                        };
                        match decoded {
                            Ok(()) => {
                                self.bump(&self.recovered, "persist.recovered");
                            }
                            Err(_) => self.quarantine(sub, &stem, RecordGate::Decode),
                        }
                    }
                    Err(gate) => self.quarantine(sub, &stem, gate),
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasengan_core::solver::{Rasengan, RasenganConfig};
    use rasengan_problems::registry::{benchmark, BenchmarkId};

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rasengan-persist-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn solved() -> (u128, OutcomeKey, Outcome, Prepared) {
        let problem = benchmark(BenchmarkId::parse("F1").unwrap());
        let solver = Rasengan::new(
            RasenganConfig::default()
                .with_seed(5)
                .with_shots(128)
                .with_max_iterations(6),
        );
        let prepared = solver.prepare(&problem).unwrap();
        let outcome = solver.solve_prepared(&problem, &prepared).unwrap();
        let fingerprint = problem.fingerprint();
        let key = OutcomeKey {
            fingerprint,
            seed: 5,
            shots: Some(128),
            iterations: Some(6),
            retries: 0,
            degrade: false,
            deadline_ms: None,
        };
        (fingerprint, key, outcome, prepared)
    }

    #[test]
    fn outcome_and_prepared_survive_reopen() {
        let dir = scratch("reopen");
        let (fingerprint, key, outcome, prepared) = solved();
        {
            let store = Persist::open(&dir).unwrap();
            store.store_outcome(&key, &outcome).unwrap();
            store.store_prepared(fingerprint, &prepared).unwrap();
            assert_eq!(store.stats().flushes, 2);
        }
        let store = Persist::open(&dir).unwrap();
        assert_eq!(store.stats().recovered, 2, "scan validates both records");
        assert_eq!(store.stats().quarantined, 0);
        let loaded = store.load_outcome(&key).expect("warm outcome");
        assert_eq!(loaded, outcome);
        let warm = store.load_prepared(fingerprint).expect("warm prepared");
        assert_eq!(warm.chain.ops, prepared.chain.ops);
        assert_eq!(store.stats().disk_hits, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_records_are_misses_not_errors() {
        let dir = scratch("miss");
        let (fingerprint, key, ..) = solved();
        let store = Persist::open(&dir).unwrap();
        assert!(store.load_outcome(&key).is_none());
        assert!(store.load_prepared(fingerprint).is_none());
        assert_eq!(store.stats().disk_misses, 2);
        assert_eq!(store.stats().quarantined, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_knobs_address_distinct_records() {
        let dir = scratch("keys");
        let (_, key, outcome, _) = solved();
        let store = Persist::open(&dir).unwrap();
        store.store_outcome(&key, &outcome).unwrap();
        let other = OutcomeKey {
            seed: key.seed + 1,
            ..key.clone()
        };
        assert!(store.load_outcome(&other).is_none());
        assert!(store.load_outcome(&key).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_fault_class_is_quarantined_on_read() {
        let (fingerprint, key, outcome, prepared) = solved();
        for kind in [
            StorageFault::TornWrite,
            StorageFault::Truncation,
            StorageFault::BitFlip,
            StorageFault::VersionSkew,
        ] {
            let dir = scratch(&format!("fault-{kind}"));
            let plan = StorageFaultPlan::every_write(42, kind);
            let store = Persist::open_with(&dir, Some(plan), None).unwrap();
            store.store_outcome(&key, &outcome).unwrap();
            store.store_prepared(fingerprint, &prepared).unwrap();
            assert_eq!(store.stats().faults_injected, 2, "{kind}: faults fired");
            // Both reads must degrade to a miss and quarantine the
            // record; a second read is then a plain miss.
            assert!(store.load_outcome(&key).is_none(), "{kind}");
            assert!(store.load_prepared(fingerprint).is_none(), "{kind}");
            assert!(
                store.stats().quarantined >= 1,
                "{kind}: corrupt records quarantined"
            );
            assert_eq!(store.stats().disk_hits, 0, "{kind}: nothing served");
            let quarantined: Vec<_> = fs::read_dir(dir.join(DIR_QUARANTINE))
                .unwrap()
                .map(|e| e.unwrap().file_name().into_string().unwrap())
                .collect();
            assert!(!quarantined.is_empty(), "{kind}: files renamed aside");
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn recovery_scan_quarantines_and_cleans_tmp() {
        let dir = scratch("recover");
        let (fingerprint, key, outcome, prepared) = solved();
        {
            let plan = StorageFaultPlan::every_write(7, StorageFault::BitFlip);
            let store = Persist::open_with(&dir, Some(plan), None).unwrap();
            store.store_outcome(&key, &outcome).unwrap();
            store.store_prepared(fingerprint, &prepared).unwrap();
        }
        // Crash residue: a stale temp file.
        fs::write(dir.join(DIR_TMP).join("stale.0.0.tmp"), b"half a record").unwrap();
        let store = Persist::open(&dir).unwrap();
        let stats = store.stats();
        assert_eq!(stats.tmp_cleaned, 1);
        assert_eq!(stats.quarantined, 2, "scan quarantines both bad records");
        assert_eq!(stats.recovered, 0);
        // The serving dirs are clean again: reads are plain misses.
        assert!(store.load_outcome(&key).is_none());
        assert_eq!(store.stats().quarantined, 2, "no double quarantine");
        // Healthy writes now land and survive another reopen.
        store.store_outcome(&key, &outcome).unwrap();
        drop(store);
        let reopened = Persist::open(&dir).unwrap();
        assert_eq!(reopened.stats().recovered, 1);
        assert_eq!(reopened.load_outcome(&key).unwrap(), outcome);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_plan_is_deterministic_per_record_name() {
        let plan = StorageFaultPlan::every_write(9, StorageFault::BitFlip);
        let bytes = vec![0u8; 64];
        let (a, fired_a) = plan.apply("somerecord", bytes.clone());
        let (b, fired_b) = plan.apply("somerecord", bytes.clone());
        assert!(fired_a && fired_b);
        assert_eq!(a, b, "same name, same corruption");
        let (c, _) = plan.apply("otherrecord", bytes);
        assert_ne!(a, c, "different names corrupt differently");
        let silent = plan.with_rate(0.0);
        let (d, fired_d) = silent.apply("somerecord", vec![0u8; 64]);
        assert!(!fired_d);
        assert_eq!(d, vec![0u8; 64]);
    }

    #[test]
    fn version_skew_passes_checksum_but_fails_version_gate() {
        let payload = b"payload bytes".to_vec();
        let mut record = encode_record(KIND_OUTCOME, OUTCOME_FORMAT, &payload);
        let (skewed, fired) =
            StorageFaultPlan::every_write(1, StorageFault::VersionSkew).apply("r", record.clone());
        assert!(fired);
        assert_eq!(
            open_record(&skewed, KIND_OUTCOME, OUTCOME_FORMAT),
            Err(RecordGate::Version)
        );
        // The untouched record passes every gate.
        assert_eq!(
            open_record(&record, KIND_OUTCOME, OUTCOME_FORMAT).unwrap(),
            &payload[..]
        );
        // And a flipped payload bit fails the checksum gate.
        let last = record.len() - 1;
        record[last] ^= 1;
        assert_eq!(
            open_record(&record, KIND_OUTCOME, OUTCOME_FORMAT),
            Err(RecordGate::Checksum)
        );
    }
}
