//! Multi-client solve service for the Rasengan reproduction —
//! std-only (`std::net` + threads), no async runtime.
//!
//! | Module | Role |
//! |---|---|
//! | [`protocol`] | wire format: line-oriented requests (blocking + incremental parsers), sectioned JSON responses |
//! | [`server`] | front-end dispatch, worker pool, admission control, graceful drain |
//! | `reactor` | epoll event loop: non-blocking sockets, timer wheel, completion wakeups (Linux x86_64/aarch64) |
//! | `conn` | per-connection read/solve/write state machine for the reactor |
//! | [`sys`] | raw epoll/eventfd syscalls — the no-dependency platform shim (Linux x86_64/aarch64) |
//! | [`cache`] | sharded LRU for finished outcomes and compiled artifacts |
//! | [`persist`] | crash-safe on-disk warm-state tier: versioned records, quarantine, recovery |
//! | [`client`] | blocking submit/stats/ping helpers |
//! | [`fabric`] | multi-node fabric: consistent-hash ring, single-hop forwarding, gossip membership |
//! | [`json`] | canonical JSON writer + small parser |
//!
//! The design contract, inherited from the repo's determinism
//! discipline: a served solve is **bit-identical** to an in-process
//! [`Rasengan::solve`](rasengan_core::solver::Rasengan::solve) with
//! the same seed and knobs, at any worker count. The `result` section
//! of a response carries only deterministic output (wall-clock lives
//! in `timing`), so the guarantee is testable by comparing bytes.
//!
//! # Example
//!
//! ```no_run
//! use rasengan_problems::io::write_problem;
//! use rasengan_problems::registry::{benchmark, BenchmarkId};
//! use rasengan_serve::{serve, submit, ServeConfig, SolveRequest};
//!
//! let server = serve(ServeConfig::default()).unwrap();
//! let problem = benchmark(BenchmarkId::parse("F1").unwrap());
//! let request = SolveRequest::new(write_problem(&problem))
//!     .with_seed(7)
//!     .with_shots(256)
//!     .with_iterations(20);
//! let reply = submit(server.addr(), &request).unwrap();
//! println!("{}", reply.section("result").unwrap());
//! server.shutdown();
//! ```

pub mod cache;
pub mod client;
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub(crate) mod conn;
pub mod fabric;
pub mod json;
pub mod persist;
pub mod protocol;
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub(crate) mod reactor;
pub mod server;
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub mod sys;

pub use client::{
    ping, stats, submit, submit_trickled, submit_with_retry, HeldConnection, RetryPolicy,
};
pub use fabric::{key_point, Fabric, FabricConfig, FabricStats, Ring, DEFAULT_VNODES};
pub use json::Json;
pub use persist::{OutcomeKey, Persist, PersistStats, StorageFault, StorageFaultPlan};
pub use protocol::{
    outcome_json, render_outcome, IncrementalParser, ParseProgress, Reply, ReplyStatus,
    RequestError, SolveRequest, Verb,
};
pub use server::{serve, ServeConfig, ServeStats, ServerHandle, EVENT_LOOP_SUPPORTED};
