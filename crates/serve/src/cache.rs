//! Sharded LRU cache for finished outcomes and compiled artifacts.
//!
//! Keys hash with FNV-1a (not `RandomState`) so shard assignment is
//! stable within and across runs; each shard is an independent
//! `Mutex`, so concurrent workers rarely contend. Eviction is
//! least-recently-used per shard, found by linear scan — shard
//! capacities are tens of entries, where a scan beats maintaining an
//! intrusive list.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Stable 64-bit FNV-1a, used only for shard selection.
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

struct Entry<V> {
    value: V,
    last_used: u64,
}

struct Shard<K, V> {
    map: HashMap<K, Entry<V>>,
    capacity: usize,
    /// Monotonic use counter; higher = more recently used.
    tick: u64,
}

/// A thread-safe LRU cache split into independently locked shards,
/// with hit/miss/insertion/eviction counters. `capacity == 0`
/// disables the cache (every `get` misses, `insert` is a no-op).
pub struct ShardedLru<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedLru<K, V> {
    /// A cache holding at most `capacity` entries in total, split over
    /// `shards` locks (clamped to at least 1).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity.div_ceil(shards);
        ShardedLru {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        capacity: if capacity == 0 { 0 } else { per_shard },
                        tick: 0,
                    })
                })
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_index(&self, key: &K) -> usize {
        let mut hasher = Fnv64::new();
        key.hash(&mut hasher);
        (hasher.finish() % self.shards.len() as u64) as usize
    }

    /// Looks up a key, marking it most-recently-used on a hit. Counts
    /// every call as a hit or a miss.
    pub fn get(&self, key: &K) -> Option<V> {
        let mut shard = self.shards[self.shard_index(key)].lock().unwrap();
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.value.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) a key, evicting the shard's least-
    /// recently-used entry if it is full.
    pub fn insert(&self, key: K, value: V) {
        let mut shard = self.shards[self.shard_index(&key)].lock().unwrap();
        if shard.capacity == 0 {
            return;
        }
        shard.tick += 1;
        let tick = shard.tick;
        if let Some(entry) = shard.map.get_mut(&key) {
            entry.value = value;
            entry.last_used = tick;
            return;
        }
        if shard.map.len() >= shard.capacity {
            let oldest = shard
                .map
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(k, _)| k.clone());
            if let Some(oldest) = oldest {
                shard.map.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.map.insert(
            key,
            Entry {
                value,
                last_used: tick,
            },
        );
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Total entries across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().map.len())
            .sum()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Misses since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Successful insertions since construction.
    pub fn insertions(&self) -> u64 {
        self.insertions.load(Ordering::Relaxed)
    }

    /// Evictions since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counts_hits_and_misses() {
        let cache: ShardedLru<u64, String> = ShardedLru::new(8, 2);
        assert!(cache.get(&1).is_none());
        cache.insert(1, "one".to_string());
        assert_eq!(cache.get(&1).as_deref(), Some("one"));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        // One shard so the eviction order is fully observable.
        let cache: ShardedLru<u64, u64> = ShardedLru::new(2, 1);
        cache.insert(1, 10);
        cache.insert(2, 20);
        // Touch 1 so 2 becomes the LRU entry.
        assert!(cache.get(&1).is_some());
        cache.insert(3, 30);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(&2).is_none(), "LRU entry should be evicted");
        assert!(cache.get(&1).is_some());
        assert!(cache.get(&3).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache: ShardedLru<u64, u64> = ShardedLru::new(0, 4);
        cache.insert(1, 10);
        assert!(cache.get(&1).is_none());
        assert_eq!(cache.insertions(), 0);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache: Arc<ShardedLru<u64, u64>> = Arc::new(ShardedLru::new(64, 4));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..64 {
                        cache.insert(t * 64 + i, i);
                        assert_eq!(cache.get(&(t * 64 + i)), Some(i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.hits(), 4 * 64);
        assert!(cache.len() <= 64);
    }
}
