//! Raw Linux syscalls for the event-driven front end: epoll and
//! eventfd, invoked directly via inline assembly.
//!
//! The repo's no-registry constraint rules out the `libc` crate, and
//! `std` exposes neither epoll nor eventfd — so this module is the
//! whole platform shim: syscall numbers for x86_64 and aarch64, the
//! `epoll_event` ABI struct (packed on x86_64, naturally aligned
//! elsewhere), and safe wrappers that translate negative returns into
//! [`std::io::Error`] values. Everything else the reactor needs
//! (non-blocking accept/read/write) goes through `std::net` with
//! `set_nonblocking`, keeping the unsafe surface to this file.
//!
//! Only compiled on `target_os = "linux"` for x86_64/aarch64; other
//! platforms fall back to the threaded front end (see
//! [`crate::server`]).

use std::io;
use std::os::fd::RawFd;

// Syscall numbers. `epoll_wait` does not exist on aarch64, so both
// architectures go through `epoll_pwait` with a null sigmask.
#[cfg(target_arch = "x86_64")]
mod nr {
    pub const READ: usize = 0;
    pub const WRITE: usize = 1;
    pub const CLOSE: usize = 3;
    pub const SETSOCKOPT: usize = 54;
    pub const EPOLL_CTL: usize = 233;
    pub const EPOLL_PWAIT: usize = 281;
    pub const EVENTFD2: usize = 290;
    pub const EPOLL_CREATE1: usize = 291;
}
#[cfg(target_arch = "aarch64")]
mod nr {
    pub const READ: usize = 63;
    pub const WRITE: usize = 64;
    pub const CLOSE: usize = 57;
    pub const SETSOCKOPT: usize = 208;
    pub const EPOLL_CTL: usize = 21;
    pub const EPOLL_PWAIT: usize = 22;
    pub const EVENTFD2: usize = 19;
    pub const EPOLL_CREATE1: usize = 20;
}

/// `epoll_ctl` ops.
pub const EPOLL_CTL_ADD: i32 = 1;
pub const EPOLL_CTL_DEL: i32 = 2;
pub const EPOLL_CTL_MOD: i32 = 3;

/// Event masks.
pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

const SOL_SOCKET: usize = 1;
const SO_SNDBUF: usize = 7;

const EPOLL_CLOEXEC: usize = 0o2000000;
const EFD_CLOEXEC: usize = 0o2000000;
const EFD_NONBLOCK: usize = 0o4000;
const EINTR: i32 = 4;

/// The kernel's `struct epoll_event`. x86_64 packs it to 12 bytes;
/// every other architecture uses natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy, Default)]
pub struct EpollEvent {
    /// `EPOLLIN | EPOLLOUT | ...` bitmask.
    pub events: u32,
    /// Caller-owned token returned verbatim with each event.
    pub data: u64,
}

impl EpollEvent {
    /// Copies the (possibly unaligned) fields out of a packed event.
    pub fn parts(&self) -> (u32, u64) {
        (self.events, self.data)
    }
}

#[cfg(target_arch = "x86_64")]
unsafe fn syscall6(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
    let ret;
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            in("r9") f,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret
}

#[cfg(target_arch = "aarch64")]
unsafe fn syscall6(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
    let ret;
    unsafe {
        std::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a => ret,
            in("x1") b,
            in("x2") c,
            in("x3") d,
            in("x4") e,
            in("x5") f,
            options(nostack),
        );
    }
    ret
}

/// Translates a raw syscall return into `io::Result`.
fn check(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

/// `setsockopt(fd, SOL_SOCKET, SO_SNDBUF, bytes)`: pins the socket's
/// kernel send buffer (the kernel doubles the requested value and, by
/// setting it explicitly, disables send-side autotuning). The serve
/// config uses this to bound per-connection kernel memory — without a
/// pin, loopback autotuning absorbs multi-megabyte replies into the
/// buffer and a stalled reader never registers as a write stall.
pub fn set_send_buffer(fd: RawFd, bytes: u32) -> io::Result<()> {
    let val: i32 = bytes.min(i32::MAX as u32) as i32;
    check(unsafe {
        syscall6(
            nr::SETSOCKOPT,
            fd as usize,
            SOL_SOCKET,
            SO_SNDBUF,
            (&val as *const i32) as usize,
            4,
            0,
        )
    })
    .map(|_| ())
}

fn close_fd(fd: RawFd) {
    // Nothing useful to do with a close error on a private fd.
    let _ = unsafe { syscall6(nr::CLOSE, fd as usize, 0, 0, 0, 0, 0) };
}

/// An epoll instance; the fd is closed on drop.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// `epoll_create1(EPOLL_CLOEXEC)`.
    pub fn new() -> io::Result<Epoll> {
        let fd = check(unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })?;
        Ok(Epoll { fd: fd as RawFd })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data };
        let ptr = if op == EPOLL_CTL_DEL {
            // The kernel ignores the event for DEL (and pre-2.6.9
            // kernels wanted a non-null pointer anyway, so keep one).
            &mut ev as *mut EpollEvent
        } else {
            &mut ev as *mut EpollEvent
        };
        check(unsafe {
            syscall6(
                nr::EPOLL_CTL,
                self.fd as usize,
                op as usize,
                fd as usize,
                ptr as usize,
                0,
                0,
            )
        })
        .map(|_| ())
    }

    /// Registers `fd` for `events`, tagging its events with `data`.
    pub fn add(&self, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, data)
    }

    /// Re-arms an already-registered `fd` with a new mask.
    pub fn modify(&self, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, data)
    }

    /// Deregisters `fd`.
    pub fn del(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits up to `timeout_ms` (-1 blocks indefinitely) and fills
    /// `events`, returning how many fired. `EINTR` retries internally
    /// so callers never observe it.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            let ret = unsafe {
                syscall6(
                    nr::EPOLL_PWAIT,
                    self.fd as usize,
                    events.as_mut_ptr() as usize,
                    events.len(),
                    timeout_ms as usize,
                    0, // null sigmask: plain epoll_wait semantics
                    8, // sigsetsize (ignored with a null mask)
                )
            };
            if ret == -(EINTR as isize) {
                continue;
            }
            return check(ret);
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        close_fd(self.fd);
    }
}

/// A non-blocking eventfd used as the reactor's wakeup channel:
/// workers (and shutdown) write a count, the reactor drains it.
/// Writing is async-signal-safe and lock-free, so solver threads never
/// touch a socket or a reactor lock to deliver completions.
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// `eventfd2(0, EFD_CLOEXEC | EFD_NONBLOCK)`.
    pub fn new() -> io::Result<EventFd> {
        let fd =
            check(unsafe { syscall6(nr::EVENTFD2, 0, EFD_CLOEXEC | EFD_NONBLOCK, 0, 0, 0, 0) })?;
        Ok(EventFd { fd: fd as RawFd })
    }

    /// The raw fd, for epoll registration.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Adds 1 to the eventfd counter, waking any epoll waiter. Errors
    /// are ignored: the only failure mode for a non-blocking eventfd
    /// write is a saturated counter, which still leaves it readable.
    pub fn wake(&self) {
        let one: u64 = 1;
        let _ = unsafe {
            syscall6(
                nr::WRITE,
                self.fd as usize,
                (&one as *const u64) as usize,
                8,
                0,
                0,
                0,
            )
        };
    }

    /// Drains the counter so the fd stops polling readable.
    pub fn drain(&self) {
        let mut count: u64 = 0;
        let _ = unsafe {
            syscall6(
                nr::READ,
                self.fd as usize,
                (&mut count as *mut u64) as usize,
                8,
                0,
                0,
                0,
            )
        };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        close_fd(self.fd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::os::fd::AsRawFd;

    #[test]
    fn eventfd_wakes_epoll_and_drains() {
        let epoll = Epoll::new().unwrap();
        let wake = EventFd::new().unwrap();
        epoll.add(wake.fd(), EPOLLIN, 42).unwrap();
        // Nothing pending: a zero-timeout wait returns no events.
        let mut events = [EpollEvent::default(); 4];
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
        // A wake makes it readable, tagged with our token.
        wake.wake();
        wake.wake();
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let (mask, data) = events[0].parts();
        assert_eq!(data, 42);
        assert_ne!(mask & EPOLLIN, 0);
        // Draining clears readability (level-triggered).
        wake.drain();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn epoll_reports_socket_readability() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let epoll = Epoll::new().unwrap();
        epoll.add(listener.as_raw_fd(), EPOLLIN, 7).unwrap();
        let mut events = [EpollEvent::default(); 4];
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
        // An incoming connection makes the listener readable.
        let mut client = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let n = epoll.wait(&mut events, 2000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].parts().1, 7);
        let (stream, _) = listener.accept().unwrap();
        stream.set_nonblocking(true).unwrap();
        // The accepted stream: writable immediately, readable only
        // after the client sends, and MOD re-arms the mask.
        epoll.add(stream.as_raw_fd(), EPOLLIN, 9).unwrap();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
        client.write_all(b"hi").unwrap();
        assert_eq!(epoll.wait(&mut events, 2000).unwrap(), 1);
        assert_eq!(events[0].parts().1, 9);
        epoll.modify(stream.as_raw_fd(), EPOLLOUT, 9).unwrap();
        let n = epoll.wait(&mut events, 2000).unwrap();
        assert_eq!(n, 1);
        assert_ne!(events[0].parts().0 & EPOLLOUT, 0);
        epoll.del(stream.as_raw_fd()).unwrap();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }
}
