//! Wire protocol: line-oriented requests, sectioned JSON responses.
//!
//! # Request
//!
//! ```text
//! RASENGAN/1 SOLVE
//! seed 7
//! shots 256
//! iterations 40
//! retries 2
//! degrade
//! deadline-ms 5000
//! BEGIN PROBLEM
//! <problems::io text format>
//! END PROBLEM
//! ```
//!
//! The first line names the protocol version and a verb (`SOLVE`,
//! `STATS`, `PING`). Every header is optional and line-oriented
//! (`key value`, or a bare flag); the problem body is bracketed by
//! `BEGIN PROBLEM` / `END PROBLEM` and defaults to the
//! [`rasengan_problems::io`] text format — a `format` header
//! (`native`, `qubo`, `qubo-recover`, `lp`) selects any other ingestion
//! front end, all of which lower into the same canonical problem
//! before solving. `STATS` and `PING` are just the verb line.
//!
//! # Response
//!
//! ```text
//! RASENGAN/1 OK
//! service {"queue_wait_ms":0.2,"cache":"miss","fingerprint":"0x..."}
//! result {"best":{...},...}
//! timing {"quantum_s":...}
//! ```
//!
//! A status line (`OK`, `BUSY`, `ERROR`) followed by named sections,
//! one canonical JSON document per line; the server closes the
//! connection after writing, so clients read to EOF. The `result`
//! section contains only deterministic solve output (no wall-clock),
//! so a served solve can be byte-compared against an in-process
//! [`Outcome`] serialized with [`render_outcome`]. Wall-clock and
//! service-side metadata live in `timing` and `service`.

use std::io::BufRead;

use rasengan_core::resilience::ResilienceConfig;
use rasengan_core::solver::{Outcome, RasenganConfig, RasenganError};
use rasengan_problems::ingest::Format;

use crate::json::{self, Json};

/// Protocol tag opening every request and response.
pub const PROTOCOL: &str = "RASENGAN/1";

/// Why reading a request body failed — the protocol's structured
/// error. The split matters operationally: a [`RequestError::Timeout`]
/// means the per-connection IO deadline fired (a slow or stalled
/// client), which the server counts separately from malformed input
/// and reports with its own `kind` tag so clients can tell "I was too
/// slow" from "my request was wrong".
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RequestError {
    /// The socket read deadline expired before the request completed.
    Timeout(String),
    /// The request was malformed (bad header, missing bracket,
    /// oversized field, non-UTF-8 body, or a non-timeout IO failure).
    Malformed(String),
}

impl RequestError {
    /// The stable `kind` tag the error section carries.
    pub fn kind(&self) -> &'static str {
        match self {
            RequestError::Timeout(_) => "timeout",
            RequestError::Malformed(_) => "bad-request",
        }
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        match self {
            RequestError::Timeout(m) | RequestError::Malformed(m) => m,
        }
    }

    fn from_io(err: std::io::Error) -> RequestError {
        match err.kind() {
            // SO_RCVTIMEO surfaces as WouldBlock on Unix sockets and
            // TimedOut elsewhere; both mean the deadline fired.
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                RequestError::Timeout("connection idle past the io timeout".to_string())
            }
            _ => RequestError::Malformed(format!("io: {err}")),
        }
    }
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind(), self.message())
    }
}

impl std::error::Error for RequestError {}

/// A request's verb.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verb {
    /// Solve the bracketed problem.
    Solve,
    /// Report service counters.
    Stats,
    /// Liveness check.
    Ping,
    /// Fabric membership exchange (push-pull heartbeat).
    Gossip,
}

/// Parses the first request line (`RASENGAN/1 <VERB>`).
pub fn parse_verb(line: &str) -> Result<Verb, String> {
    let mut words = line.split_whitespace();
    match words.next() {
        Some(tag) if tag == PROTOCOL => {}
        Some(other) => return Err(format!("unknown protocol `{other}`")),
        None => return Err("empty request".to_string()),
    }
    match words.next() {
        Some("SOLVE") => Ok(Verb::Solve),
        Some("STATS") => Ok(Verb::Stats),
        Some("PING") => Ok(Verb::Ping),
        Some("GOSSIP") => Ok(Verb::Gossip),
        Some(other) => Err(format!("unknown verb `{other}`")),
        None => Err("missing verb".to_string()),
    }
}

/// A member's health as carried on the gossip wire. The fabric's
/// suspicion state machine owns the transitions; the wire only names
/// the three states so receivers can merge remote views.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GossipState {
    /// Heard from recently.
    Alive,
    /// Quiet past the suspect timeout; still in the ring.
    Suspect,
    /// Quiet past the dead timeout; out of the ring.
    Dead,
}

impl GossipState {
    /// The wire token.
    pub fn token(self) -> &'static str {
        match self {
            GossipState::Alive => "alive",
            GossipState::Suspect => "suspect",
            GossipState::Dead => "dead",
        }
    }

    /// Parses a wire token.
    pub fn parse(token: &str) -> Option<GossipState> {
        match token {
            "alive" => Some(GossipState::Alive),
            "suspect" => Some(GossipState::Suspect),
            "dead" => Some(GossipState::Dead),
            _ => None,
        }
    }
}

/// One member row in a gossip exchange.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GossipMember {
    /// Stable node id (no whitespace).
    pub id: String,
    /// Address peers dial to reach the node (no whitespace).
    pub addr: String,
    /// Sender's view of the member's health.
    pub state: GossipState,
}

/// Ceiling on member rows in one gossip message; a hostile peer cannot
/// grow a receiver's membership table without bound.
pub const MAX_GOSSIP_MEMBERS: usize = 1024;

/// A membership exchange: the sender introduces itself and shares its
/// member table; the receiver merges it and replies with its own view
/// in a `gossip` response section (push-pull anti-entropy).
///
/// ```text
/// RASENGAN/1 GOSSIP
/// from <node-id> <addr>
/// member <node-id> <addr> <alive|suspect|dead>
/// END GOSSIP
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GossipMessage {
    /// Sender's node id.
    pub from_id: String,
    /// Sender's advertised address.
    pub from_addr: String,
    /// Sender's member table (usually includes itself).
    pub members: Vec<GossipMember>,
}

impl GossipMessage {
    /// Renders the full request text (verb line through `END GOSSIP`).
    pub fn render(&self) -> String {
        let mut out = format!("{PROTOCOL} GOSSIP\n");
        out.push_str(&format!("from {} {}\n", self.from_id, self.from_addr));
        for member in &self.members {
            out.push_str(&format!(
                "member {} {} {}\n",
                member.id,
                member.addr,
                member.state.token()
            ));
        }
        out.push_str("END GOSSIP\n");
        out
    }

    /// Parses the remainder of a `GOSSIP` request (everything after the
    /// verb line) from a buffered reader.
    pub fn parse_body<R: BufRead>(reader: &mut R) -> Result<GossipMessage, RequestError> {
        let mut accum = GossipAccum::default();
        let mut line = String::new();
        loop {
            line.clear();
            let n = reader.read_line(&mut line).map_err(RequestError::from_io)?;
            if n == 0 {
                return Err(RequestError::Malformed(
                    "gossip ended before END GOSSIP".to_string(),
                ));
            }
            if apply_gossip_line(&mut accum, line.trim())? == GossipLine::End {
                return accum.finish();
            }
        }
    }
}

/// Accumulates gossip lines; shared by the blocking reader and the
/// incremental parser so both front ends accept identical messages.
#[derive(Debug, Default)]
struct GossipAccum {
    from: Option<(String, String)>,
    members: Vec<GossipMember>,
}

impl GossipAccum {
    fn finish(self) -> Result<GossipMessage, RequestError> {
        let (from_id, from_addr) = self
            .from
            .ok_or_else(|| RequestError::Malformed("gossip missing `from` line".to_string()))?;
        Ok(GossipMessage {
            from_id,
            from_addr,
            members: self.members,
        })
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum GossipLine {
    Row,
    End,
}

fn apply_gossip_line(accum: &mut GossipAccum, trimmed: &str) -> Result<GossipLine, RequestError> {
    if trimmed.is_empty() {
        return Ok(GossipLine::Row);
    }
    if trimmed == "END GOSSIP" {
        return Ok(GossipLine::End);
    }
    let words: Vec<&str> = trimmed.split_whitespace().collect();
    match words.as_slice() {
        ["from", id, addr] => {
            accum.from = Some((id.to_string(), addr.to_string()));
        }
        ["member", id, addr, state] => {
            if accum.members.len() >= MAX_GOSSIP_MEMBERS {
                return Err(RequestError::Malformed(format!(
                    "gossip exceeds {MAX_GOSSIP_MEMBERS} members"
                )));
            }
            let state = GossipState::parse(state).ok_or_else(|| {
                RequestError::Malformed(format!("unknown gossip state `{state}`"))
            })?;
            accum.members.push(GossipMember {
                id: id.to_string(),
                addr: addr.to_string(),
                state,
            });
        }
        _ => {
            return Err(RequestError::Malformed(format!(
                "bad gossip line `{trimmed}`"
            )))
        }
    }
    Ok(GossipLine::Row)
}

/// A solve request: the problem text plus the training knobs the
/// service lets clients control. Compile-side knobs (simplification,
/// pruning, segmentation, device) are fixed at their defaults so the
/// server's compile cache stays valid across requests.
#[derive(Clone, Debug, PartialEq)]
pub struct SolveRequest {
    /// Problem in the [`rasengan_problems::io`] text format.
    pub problem_text: String,
    /// Base RNG seed (`seed` header; default 0).
    pub seed: u64,
    /// Shots per objective evaluation (`shots`; default: solver's).
    pub shots: Option<usize>,
    /// Optimizer iteration cap (`iterations`; default: solver's).
    pub iterations: Option<usize>,
    /// Resilience retry budget (`retries`; default 0).
    pub retries: usize,
    /// Allow graceful degradation (`degrade` bare flag).
    pub degrade: bool,
    /// Per-request deadline (`deadline-ms`), mapped onto the solver's
    /// per-stage wall-clock budget: train and execute each get half.
    pub deadline_ms: Option<u64>,
    /// Lockstep trajectory batch width (`batch`; default: solver's).
    /// A throughput knob like the server's thread count: it cannot
    /// change solve results, so it is deliberately absent from the
    /// result-cache key.
    pub batch: Option<usize>,
    /// Request a structured trace (`trace` bare flag): the response
    /// gains a `trace` section carrying the solve's deterministic span
    /// tree.
    pub trace: bool,
    /// Fabric hop marker (`via` header): the node id of the peer that
    /// forwarded this request. A request carrying `via` is never
    /// forwarded again, bounding fabric routing to a single hop. Like
    /// `batch`, it cannot change solve results and is absent from the
    /// result-cache key.
    pub via: Option<String>,
    /// Input format of the problem body (`format` header; default
    /// `native`). The server lowers every format into the same
    /// canonical [`Problem`](rasengan_problems::Problem) before
    /// fingerprinting, so the result cache is keyed on the lowered
    /// problem and the header needs no slot in the cache key.
    pub format: Format,
}

/// Upper bound on the bracketed problem body, in bytes. A hostile
/// client cannot make the server buffer unbounded input; real problem
/// files are a few KiB.
pub const MAX_PROBLEM_BYTES: usize = 1 << 20;

/// Upper bounds on numeric headers. Values beyond these are rejected
/// as malformed rather than trusted into shot/iteration arithmetic.
const MAX_SHOTS: usize = 10_000_000;
const MAX_ITERATIONS: usize = 1_000_000;
const MAX_RETRIES: usize = 64;
const MAX_BATCH: usize = 64;

impl SolveRequest {
    /// A request with default knobs for the given problem text.
    pub fn new(problem_text: impl Into<String>) -> Self {
        SolveRequest {
            problem_text: problem_text.into(),
            seed: 0,
            shots: None,
            iterations: None,
            retries: 0,
            degrade: false,
            deadline_ms: None,
            batch: None,
            trace: false,
            via: None,
            format: Format::Native,
        }
    }

    /// Sets the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the shots per objective evaluation.
    pub fn with_shots(mut self, shots: usize) -> Self {
        self.shots = Some(shots);
        self
    }

    /// Caps optimizer iterations.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = Some(iterations);
        self
    }

    /// Grants a resilience retry budget.
    pub fn with_retries(mut self, retries: usize) -> Self {
        self.retries = retries;
        self
    }

    /// Allows graceful degradation.
    pub fn with_degrade(mut self) -> Self {
        self.degrade = true;
        self
    }

    /// Sets a per-request deadline in milliseconds.
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// Pins the lockstep trajectory batch width.
    pub fn with_batch(mut self, lanes: usize) -> Self {
        self.batch = Some(lanes);
        self
    }

    /// Requests a structured trace of the solve.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Marks the request as forwarded by the named fabric node, so the
    /// receiver serves it locally instead of forwarding again.
    pub fn with_via(mut self, node_id: impl Into<String>) -> Self {
        self.via = Some(node_id.into());
        self
    }

    /// Declares the input format of the problem body.
    pub fn with_format(mut self, format: Format) -> Self {
        self.format = format;
        self
    }

    /// The solver configuration this request maps to. `retries 2` plus
    /// the `degrade` flag reproduce
    /// [`ResilienceConfig::recommended`] exactly, so a served solve is
    /// bit-identical to an in-process solve under the recommended
    /// resilience posture.
    pub fn config(&self) -> RasenganConfig {
        let mut cfg = RasenganConfig::default().with_seed(self.seed);
        if let Some(shots) = self.shots {
            cfg = cfg.with_shots(shots);
        }
        if let Some(iters) = self.iterations {
            cfg = cfg.with_max_iterations(iters);
        }
        if let Some(lanes) = self.batch {
            cfg = cfg.with_batch(lanes);
        }
        let mut resilience = ResilienceConfig::default();
        if self.retries > 0 {
            resilience = resilience.with_retry_budget(self.retries);
        }
        if self.degrade {
            resilience = resilience.with_degradation();
        }
        if let Some(ms) = self.deadline_ms {
            // The deadline covers the whole request; training and the
            // final execution are the two budgeted stages, so each
            // gets half as its wall-clock ceiling.
            resilience = resilience.with_stage_seconds(ms as f64 / 1000.0 / 2.0);
        }
        cfg.with_resilience(resilience).with_trace(self.trace)
    }

    /// Renders the full request text (first line through
    /// `END PROBLEM`).
    pub fn render(&self) -> String {
        let mut out = format!("{PROTOCOL} SOLVE\n");
        out.push_str(&format!("seed {}\n", self.seed));
        if let Some(shots) = self.shots {
            out.push_str(&format!("shots {shots}\n"));
        }
        if let Some(iters) = self.iterations {
            out.push_str(&format!("iterations {iters}\n"));
        }
        if self.retries > 0 {
            out.push_str(&format!("retries {}\n", self.retries));
        }
        if self.degrade {
            out.push_str("degrade\n");
        }
        if self.trace {
            out.push_str("trace\n");
        }
        if let Some(via) = &self.via {
            out.push_str(&format!("via {via}\n"));
        }
        if self.format != Format::Native {
            out.push_str(&format!("format {}\n", self.format.token()));
        }
        if let Some(ms) = self.deadline_ms {
            out.push_str(&format!("deadline-ms {ms}\n"));
        }
        if let Some(lanes) = self.batch {
            out.push_str(&format!("batch {lanes}\n"));
        }
        out.push_str("BEGIN PROBLEM\n");
        out.push_str(&self.problem_text);
        if !self.problem_text.ends_with('\n') {
            out.push('\n');
        }
        out.push_str("END PROBLEM\n");
        out
    }

    /// Parses the remainder of a `SOLVE` request (everything after the
    /// verb line) from a buffered reader. An expired socket deadline
    /// surfaces as [`RequestError::Timeout`]; everything else is
    /// [`RequestError::Malformed`].
    pub fn parse_body<R: BufRead>(reader: &mut R) -> Result<SolveRequest, RequestError> {
        let malformed = |m: &str| RequestError::Malformed(m.to_string());
        let mut request = SolveRequest::new(String::new());
        let mut line = String::new();
        loop {
            line.clear();
            let n = reader.read_line(&mut line).map_err(RequestError::from_io)?;
            if n == 0 {
                return Err(malformed("request ended before BEGIN PROBLEM"));
            }
            match apply_header_line(&mut request, line.trim())? {
                HeaderLine::Header => {}
                HeaderLine::BeginProblem => break,
            }
        }
        let mut problem = String::new();
        loop {
            line.clear();
            let n = reader.read_line(&mut line).map_err(RequestError::from_io)?;
            if n == 0 {
                return Err(malformed("request ended before END PROBLEM"));
            }
            if apply_body_line(&mut problem, &line)? == BodyLine::EndProblem {
                break;
            }
        }
        request.problem_text = problem;
        Ok(request)
    }
}

/// What a line in the header section turned out to be.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum HeaderLine {
    /// A header (or blank line) was consumed.
    Header,
    /// The `BEGIN PROBLEM` bracket: the body starts next.
    BeginProblem,
}

/// What a line in the body section turned out to be.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BodyLine {
    /// A body line was appended.
    Body,
    /// The `END PROBLEM` bracket: the request is complete.
    EndProblem,
}

/// Applies one trimmed header-section line to `request`. Shared by the
/// blocking reader path and the incremental (reactor) parser so both
/// front ends accept byte-for-byte the same requests.
fn apply_header_line(
    request: &mut SolveRequest,
    trimmed: &str,
) -> Result<HeaderLine, RequestError> {
    if trimmed.is_empty() {
        return Ok(HeaderLine::Header);
    }
    if trimmed == "BEGIN PROBLEM" {
        return Ok(HeaderLine::BeginProblem);
    }
    let (key, value) = match trimmed.split_once(char::is_whitespace) {
        Some((k, v)) => (k, v.trim()),
        None => (trimmed, ""),
    };
    match key {
        "seed" => request.seed = parse_header(key, value).map_err(RequestError::Malformed)?,
        "shots" => {
            request.shots =
                Some(parse_bounded(key, value, MAX_SHOTS).map_err(RequestError::Malformed)?)
        }
        "iterations" => {
            request.iterations =
                Some(parse_bounded(key, value, MAX_ITERATIONS).map_err(RequestError::Malformed)?)
        }
        "retries" => {
            request.retries =
                parse_bounded(key, value, MAX_RETRIES).map_err(RequestError::Malformed)?
        }
        "degrade" => request.degrade = true,
        "trace" => request.trace = true,
        "via" => {
            if value.is_empty() || value.contains(char::is_whitespace) {
                return Err(RequestError::Malformed(
                    "header `via` wants a single node id".to_string(),
                ));
            }
            request.via = Some(value.to_string());
        }
        "format" => {
            request.format = Format::parse(value).ok_or_else(|| {
                RequestError::Malformed(format!(
                    "unknown problem format `{value}` (expected one of {})",
                    Format::all()
                        .iter()
                        .map(|f| f.token())
                        .collect::<Vec<_>>()
                        .join(", ")
                ))
            })?
        }
        "deadline-ms" => {
            request.deadline_ms = Some(parse_header(key, value).map_err(RequestError::Malformed)?)
        }
        "batch" => {
            let lanes = parse_bounded(key, value, MAX_BATCH).map_err(RequestError::Malformed)?;
            if lanes == 0 {
                return Err(RequestError::Malformed(
                    "header `batch` must be positive".to_string(),
                ));
            }
            request.batch = Some(lanes);
        }
        other => return Err(RequestError::Malformed(format!("unknown header `{other}`"))),
    }
    Ok(HeaderLine::Header)
}

/// Applies one raw body line (terminator included, as `read_line`
/// yields it) to the accumulating problem text, enforcing
/// [`MAX_PROBLEM_BYTES`].
fn apply_body_line(problem: &mut String, line: &str) -> Result<BodyLine, RequestError> {
    if line.trim() == "END PROBLEM" {
        return Ok(BodyLine::EndProblem);
    }
    if problem.len() + line.len() > MAX_PROBLEM_BYTES {
        return Err(RequestError::Malformed(format!(
            "problem body exceeds {MAX_PROBLEM_BYTES} bytes"
        )));
    }
    problem.push_str(line);
    Ok(BodyLine::Body)
}

/// Progress of an [`IncrementalParser`] after feeding it bytes.
#[derive(Clone, Debug, PartialEq)]
pub enum ParseProgress {
    /// The request is incomplete; feed more bytes (or signal EOF).
    More,
    /// The verb line named `STATS` or `PING` — no body follows.
    Verb(Verb),
    /// A complete `SOLVE` request.
    Request(Box<SolveRequest>),
    /// A complete `GOSSIP` exchange.
    Gossip(Box<GossipMessage>),
}

/// Ceiling on bytes buffered for one request. The body cap is enforced
/// line by line as in the blocking path; this outer bound additionally
/// stops a client that streams forever without ever sending a newline.
const MAX_REQUEST_BYTES: usize = MAX_PROBLEM_BYTES + (64 << 10);

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ParseState {
    Verb,
    Headers,
    Body,
    Gossip,
    Done,
}

/// An incremental request parser over a growable buffer — the
/// non-blocking twin of [`parse_verb`] + [`SolveRequest::parse_body`].
///
/// The reactor owns one per connection and feeds it whatever bytes the
/// socket yields; the parser consumes complete lines as they form and
/// drives the same line-level state machine as the blocking reader
/// (verb → headers → bracketed body), via the same shared helpers, so
/// the two front ends accept exactly the same requests and reject with
/// exactly the same errors.
#[derive(Debug)]
pub struct IncrementalParser {
    buf: Vec<u8>,
    /// Index of the first byte not yet consumed as a complete line.
    scan: usize,
    state: ParseState,
    request: SolveRequest,
    problem: String,
    gossip: GossipAccum,
    verb: Option<Verb>,
}

impl Default for IncrementalParser {
    fn default() -> Self {
        IncrementalParser::new()
    }
}

impl IncrementalParser {
    /// A parser positioned before the verb line.
    pub fn new() -> IncrementalParser {
        IncrementalParser {
            buf: Vec::new(),
            scan: 0,
            state: ParseState::Verb,
            request: SolveRequest::new(String::new()),
            problem: String::new(),
            gossip: GossipAccum::default(),
            verb: None,
        }
    }

    /// Whether the verb line has been parsed yet. The server uses this
    /// to attribute a timeout: before the verb it is an anonymous bad
    /// connection, after it a stalled request.
    pub fn verb_seen(&self) -> bool {
        self.verb.is_some()
    }

    /// Bytes currently buffered (diagnostics / tests).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.scan
    }

    /// Feeds freshly-read bytes and advances as far as the completed
    /// lines allow.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<ParseProgress, RequestError> {
        if self.buf.len() - self.scan + bytes.len() > MAX_REQUEST_BYTES {
            return Err(RequestError::Malformed(format!(
                "request exceeds {MAX_REQUEST_BYTES} bytes"
            )));
        }
        self.buf.extend_from_slice(bytes);
        self.advance(false)
    }

    /// Signals end-of-stream. Any buffered partial line is treated as
    /// a final unterminated line — exactly what `read_line` yields at
    /// EOF — and an incomplete request becomes the same error the
    /// blocking path reports.
    pub fn eof(&mut self) -> Result<ParseProgress, RequestError> {
        match self.advance(true)? {
            ParseProgress::More => Err(match self.state {
                ParseState::Verb => RequestError::Malformed(
                    parse_verb("").expect_err("empty verb line is an error"),
                ),
                ParseState::Headers => {
                    RequestError::Malformed("request ended before BEGIN PROBLEM".to_string())
                }
                ParseState::Body => {
                    RequestError::Malformed("request ended before END PROBLEM".to_string())
                }
                ParseState::Gossip => {
                    RequestError::Malformed("gossip ended before END GOSSIP".to_string())
                }
                ParseState::Done => RequestError::Malformed("request already complete".to_string()),
            }),
            progress => Ok(progress),
        }
    }

    fn advance(&mut self, at_eof: bool) -> Result<ParseProgress, RequestError> {
        loop {
            let line_end = self.buf[self.scan..]
                .iter()
                .position(|&b| b == b'\n')
                .map(|i| self.scan + i + 1);
            let (start, end) = match line_end {
                Some(end) => (self.scan, end),
                // A partial line only counts at EOF (and an empty one
                // is genuine EOF, not a final line).
                None if at_eof && self.scan < self.buf.len() => (self.scan, self.buf.len()),
                None => {
                    self.compact();
                    return Ok(ParseProgress::More);
                }
            };
            let line = std::str::from_utf8(&self.buf[start..end]).map_err(|_| {
                // The message the blocking path produces when
                // `read_line` hits invalid UTF-8.
                RequestError::Malformed("io: stream did not contain valid UTF-8".to_string())
            })?;
            match self.state {
                ParseState::Verb => {
                    let verb = parse_verb(line).map_err(RequestError::Malformed)?;
                    self.verb = Some(verb);
                    self.scan = end;
                    match verb {
                        Verb::Solve => self.state = ParseState::Headers,
                        Verb::Gossip => self.state = ParseState::Gossip,
                        Verb::Stats | Verb::Ping => {
                            self.state = ParseState::Done;
                            return Ok(ParseProgress::Verb(verb));
                        }
                    }
                }
                ParseState::Headers => {
                    let outcome = apply_header_line(&mut self.request, line.trim())?;
                    self.scan = end;
                    if outcome == HeaderLine::BeginProblem {
                        self.state = ParseState::Body;
                    }
                }
                ParseState::Body => {
                    let outcome = apply_body_line(&mut self.problem, line)?;
                    self.scan = end;
                    if outcome == BodyLine::EndProblem {
                        self.state = ParseState::Done;
                        let mut request =
                            std::mem::replace(&mut self.request, SolveRequest::new(String::new()));
                        request.problem_text = std::mem::take(&mut self.problem);
                        return Ok(ParseProgress::Request(Box::new(request)));
                    }
                }
                ParseState::Gossip => {
                    let outcome = apply_gossip_line(&mut self.gossip, line.trim())?;
                    self.scan = end;
                    if outcome == GossipLine::End {
                        self.state = ParseState::Done;
                        let accum = std::mem::take(&mut self.gossip);
                        return Ok(ParseProgress::Gossip(Box::new(accum.finish()?)));
                    }
                }
                ParseState::Done => return Ok(ParseProgress::More),
            }
        }
    }

    /// Drops consumed bytes once they dominate the buffer, keeping the
    /// resident footprint proportional to the unconsumed tail.
    fn compact(&mut self) {
        if self.scan > 4096 && self.scan * 2 > self.buf.len() {
            self.buf.drain(..self.scan);
            self.scan = 0;
        }
    }
}

fn parse_header<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("invalid value `{value}` for header `{key}`"))
}

/// Parses a numeric header and rejects values above `max`, so an
/// oversized field becomes a structured error instead of feeding
/// arbitrarily large numbers into downstream arithmetic.
fn parse_bounded(key: &str, value: &str, max: usize) -> Result<usize, String> {
    let parsed: usize = parse_header(key, value)?;
    if parsed > max {
        return Err(format!("header `{key}` value {parsed} exceeds limit {max}"));
    }
    Ok(parsed)
}

/// Response status.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplyStatus {
    /// The request was served; a `result` (or `stats`/`pong`) section
    /// follows.
    Ok,
    /// Load was shed: the admission queue was full. The `service`
    /// section carries queue depth and capacity; retry later.
    Busy,
    /// The request failed; the `error` section says why, and a
    /// `partial` section may carry a best-effort outcome.
    Error,
}

impl ReplyStatus {
    fn token(self) -> &'static str {
        match self {
            ReplyStatus::Ok => "OK",
            ReplyStatus::Busy => "BUSY",
            ReplyStatus::Error => "ERROR",
        }
    }
}

/// A parsed response: a status plus named sections, each one line of
/// canonical JSON. Section bodies are kept as raw strings so tests can
/// byte-compare them; [`Reply::json`] parses on demand.
#[derive(Clone, Debug, PartialEq)]
pub struct Reply {
    /// The status from the first line.
    pub status: ReplyStatus,
    /// `(name, raw JSON)` in response order.
    pub sections: Vec<(String, String)>,
}

impl Reply {
    /// Builds a reply from JSON sections.
    pub fn new(status: ReplyStatus, sections: Vec<(&str, Json)>) -> Reply {
        Reply {
            status,
            sections: sections
                .into_iter()
                .map(|(name, body)| (name.to_string(), body.render()))
                .collect(),
        }
    }

    /// The raw JSON text of a section.
    pub fn section(&self, name: &str) -> Option<&str> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, body)| body.as_str())
    }

    /// Parses a section as JSON.
    pub fn json(&self, name: &str) -> Result<Json, String> {
        let body = self
            .section(name)
            .ok_or_else(|| format!("no `{name}` section"))?;
        json::parse(body)
    }

    /// Renders the full response text.
    pub fn render(&self) -> String {
        let mut out = format!("{PROTOCOL} {}\n", self.status.token());
        for (name, body) in &self.sections {
            out.push_str(name);
            out.push(' ');
            out.push_str(body);
            out.push('\n');
        }
        out
    }

    /// Parses a full response (as read to EOF by a client).
    pub fn parse(text: &str) -> Result<Reply, String> {
        let mut lines = text.lines();
        let first = lines.next().ok_or("empty response")?;
        let status = match first.split_whitespace().collect::<Vec<_>>().as_slice() {
            [tag, "OK"] if *tag == PROTOCOL => ReplyStatus::Ok,
            [tag, "BUSY"] if *tag == PROTOCOL => ReplyStatus::Busy,
            [tag, "ERROR"] if *tag == PROTOCOL => ReplyStatus::Error,
            _ => return Err(format!("bad status line `{first}`")),
        };
        let mut sections = Vec::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let (name, body) = line
                .split_once(' ')
                .ok_or_else(|| format!("bad section line `{line}`"))?;
            sections.push((name.to_string(), body.to_string()));
        }
        Ok(Reply { status, sections })
    }
}

/// Serializes the deterministic part of an [`Outcome`] — everything
/// except wall-clock latency — as a canonical JSON object. Bit-equal
/// outcomes serialize to byte-equal text, which is the contract the
/// served-determinism tests check.
pub fn outcome_json(outcome: &Outcome) -> Json {
    let best = Json::obj(vec![
        (
            "bits",
            Json::Arr(
                outcome
                    .best
                    .bits
                    .iter()
                    .map(|&b| Json::Int(b as i128))
                    .collect(),
            ),
        ),
        ("value", Json::Num(outcome.best.value)),
        ("feasible", Json::Bool(outcome.best.feasible)),
    ]);
    let distribution = Json::Obj(
        outcome
            .distribution
            .iter()
            .map(|(label, p)| (label.to_string(), Json::Num(*p)))
            .collect(),
    );
    let stats = Json::obj(vec![
        ("m_basis", Json::Int(outcome.stats.m_basis as i128)),
        ("raw_ops", Json::Int(outcome.stats.raw_ops as i128)),
        ("kept_ops", Json::Int(outcome.stats.kept_ops as i128)),
        ("n_segments", Json::Int(outcome.stats.n_segments as i128)),
        (
            "max_segment_cx_depth",
            Json::Int(outcome.stats.max_segment_cx_depth as i128),
        ),
        (
            "total_cx_depth",
            Json::Int(outcome.stats.total_cx_depth as i128),
        ),
        ("n_params", Json::Int(outcome.stats.n_params as i128)),
        (
            "simplify_before",
            Json::Int(outcome.stats.simplify_cost.0 as i128),
        ),
        (
            "simplify_after",
            Json::Int(outcome.stats.simplify_cost.1 as i128),
        ),
    ]);
    let resilience = Json::obj(vec![
        ("clean", Json::Bool(outcome.resilience.is_clean())),
        (
            "faults",
            Json::Int(outcome.resilience.faults_injected() as i128),
        ),
        ("retries", Json::Int(outcome.resilience.retries() as i128)),
        (
            "recoveries",
            Json::Int(outcome.resilience.recoveries() as i128),
        ),
        (
            "degradations",
            Json::Int(outcome.resilience.degradations() as i128),
        ),
        (
            "budget_stops",
            Json::Int(outcome.resilience.budget_exhaustions() as i128),
        ),
    ]);
    Json::obj(vec![
        ("best", best),
        ("expectation", Json::Num(outcome.expectation)),
        ("arg", Json::Num(outcome.arg)),
        (
            "raw_in_constraints_rate",
            Json::Num(outcome.raw_in_constraints_rate),
        ),
        (
            "in_constraints_rate",
            Json::Num(outcome.in_constraints_rate),
        ),
        ("distribution", distribution),
        ("stats", stats),
        (
            "history",
            Json::Arr(outcome.history.iter().map(|&x| Json::Num(x)).collect()),
        ),
        ("evaluations", Json::Int(outcome.evaluations as i128)),
        ("total_shots", Json::Int(outcome.total_shots as i128)),
        (
            "trained_times",
            Json::Arr(
                outcome
                    .trained_times
                    .iter()
                    .map(|&x| Json::Num(x))
                    .collect(),
            ),
        ),
        ("resilience", resilience),
    ])
}

/// Renders [`outcome_json`] to its canonical byte form — the exact
/// bytes the server puts in the `result` section.
pub fn render_outcome(outcome: &Outcome) -> String {
    outcome_json(outcome).render()
}

/// Serializes the wall-clock side of an [`Outcome`] (the non-
/// deterministic part, kept out of `result`).
pub fn timing_json(outcome: &Outcome) -> Json {
    let stages = &outcome.latency.stages;
    Json::obj(vec![
        ("quantum_s", Json::Num(outcome.latency.quantum_s)),
        ("classical_s", Json::Num(outcome.latency.classical_s)),
        ("prepare_s", Json::Num(stages.prepare_s)),
        ("train_s", Json::Num(stages.train_s)),
        ("execute_s", Json::Num(stages.execute_s)),
        ("retry_s", Json::Num(stages.retry_s)),
        ("queue_s", Json::Num(stages.queue_s)),
        ("cache_hit", Json::Bool(stages.cache_hit)),
    ])
}

/// Maps a solver error to response sections: an `error` section with a
/// stable `kind` tag and human-readable message, plus a `partial`
/// section when a budget stop salvaged a partial outcome.
pub fn error_sections(err: &RasenganError) -> Vec<(&'static str, Json)> {
    let kind = match err {
        RasenganError::Basis(_) => "basis",
        RasenganError::NoFeasibleSeed => "no-feasible-seed",
        RasenganError::NoFeasibleOutput { .. } => "no-feasible-output",
        RasenganError::FullyDetermined => "fully-determined",
        RasenganError::BudgetExceeded { .. } => "budget-exceeded",
        RasenganError::AllStartsFailed { .. } => "all-starts-failed",
    };
    let mut sections = vec![(
        "error",
        Json::obj(vec![
            ("kind", Json::Str(kind.to_string())),
            ("message", Json::Str(err.to_string())),
        ]),
    )];
    if let RasenganError::BudgetExceeded {
        partial: Some(partial),
        ..
    } = err
    {
        sections.push(("partial", outcome_json(partial)));
    }
    sections
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn request_render_parse_round_trip() {
        let request = SolveRequest::new("vars 2\nconstraint 1 : 1 1\n")
            .with_seed(7)
            .with_shots(256)
            .with_iterations(40)
            .with_retries(2)
            .with_degrade()
            .with_trace()
            .with_deadline_ms(5000)
            .with_batch(4)
            .with_format(Format::Qubo);
        let text = request.render();
        let mut lines = text.lines();
        assert_eq!(parse_verb(lines.next().unwrap()).unwrap(), Verb::Solve);
        let rest = text.split_once('\n').unwrap().1;
        let parsed = SolveRequest::parse_body(&mut BufReader::new(rest.as_bytes())).unwrap();
        assert_eq!(parsed, request);
    }

    #[test]
    fn request_maps_to_recommended_resilience() {
        let request = SolveRequest::new("").with_retries(2).with_degrade();
        let cfg = request.config();
        let recommended = ResilienceConfig::recommended();
        assert_eq!(cfg.resilience.retry_budget, recommended.retry_budget);
        assert_eq!(cfg.resilience.degrade, recommended.degrade);
        assert_eq!(cfg.resilience.shot_escalation, recommended.shot_escalation);
    }

    #[test]
    fn deadline_splits_across_stages() {
        let cfg = SolveRequest::new("").with_deadline_ms(5000).config();
        assert_eq!(cfg.resilience.max_stage_seconds, Some(2.5));
    }

    #[test]
    fn bad_requests_are_rejected() {
        assert!(parse_verb("HTTP/1.1 GET").is_err());
        assert!(parse_verb("RASENGAN/1 DANCE").is_err());
        let mut truncated = BufReader::new("seed 3\n".as_bytes());
        assert!(SolveRequest::parse_body(&mut truncated).is_err());
        let mut unknown = BufReader::new("volume 11\nBEGIN PROBLEM\nEND PROBLEM\n".as_bytes());
        assert!(SolveRequest::parse_body(&mut unknown).is_err());
    }

    #[test]
    fn truncated_header_line_is_an_error_not_a_panic() {
        // EOF mid-header (no trailing newline, no BEGIN PROBLEM).
        let mut eof_mid_header = BufReader::new("shots 25".as_bytes());
        let err = SolveRequest::parse_body(&mut eof_mid_header).unwrap_err();
        assert!(
            err.message().contains("BEGIN PROBLEM"),
            "unexpected error: {err}"
        );
        assert_eq!(err.kind(), "bad-request");
        // A header with a garbage value is rejected with the key named.
        let mut garbage = BufReader::new("shots lots\nBEGIN PROBLEM\nEND PROBLEM\n".as_bytes());
        let err = SolveRequest::parse_body(&mut garbage).unwrap_err();
        assert!(err.message().contains("shots"), "unexpected error: {err}");
        // EOF inside the body (END PROBLEM never arrives).
        let mut eof_in_body = BufReader::new("BEGIN PROBLEM\nvars 2\n".as_bytes());
        let err = SolveRequest::parse_body(&mut eof_in_body).unwrap_err();
        assert!(
            err.message().contains("END PROBLEM"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn non_utf8_body_is_an_error_not_a_panic() {
        let mut bytes = b"seed 1\nBEGIN PROBLEM\n".to_vec();
        bytes.extend_from_slice(&[0xff, 0xfe, 0xfd, b'\n']);
        bytes.extend_from_slice(b"END PROBLEM\n");
        let mut reader = BufReader::new(bytes.as_slice());
        assert!(SolveRequest::parse_body(&mut reader).is_err());
    }

    #[test]
    fn oversized_fields_are_rejected() {
        // A length-like field too large for u64 fails cleanly…
        let text = "shots 99999999999999999999999999\nBEGIN PROBLEM\nEND PROBLEM\n";
        let mut reader = BufReader::new(text.as_bytes());
        assert!(SolveRequest::parse_body(&mut reader).is_err());
        // …and one that parses but exceeds the protocol cap is also
        // rejected, with the limit named.
        let text = "iterations 999999999\nBEGIN PROBLEM\nEND PROBLEM\n";
        let mut reader = BufReader::new(text.as_bytes());
        let err = SolveRequest::parse_body(&mut reader).unwrap_err();
        assert!(err.message().contains("limit"), "unexpected error: {err}");
        // An oversized problem body is cut off at MAX_PROBLEM_BYTES.
        let mut text = String::from("BEGIN PROBLEM\n");
        for _ in 0..=MAX_PROBLEM_BYTES / 16 {
            text.push_str("vars 2 vars 2 vs\n");
        }
        text.push_str("END PROBLEM\n");
        let mut reader = BufReader::new(text.as_bytes());
        let err = SolveRequest::parse_body(&mut reader).unwrap_err();
        assert!(err.message().contains("exceeds"), "unexpected error: {err}");
    }

    #[test]
    fn trace_flag_round_trips_and_reaches_config() {
        let request = SolveRequest::new("vars 1\n").with_trace();
        assert!(request.render().lines().any(|l| l == "trace"));
        let rest = request.render();
        let rest = rest.split_once('\n').unwrap().1;
        let parsed = SolveRequest::parse_body(&mut BufReader::new(rest.as_bytes())).unwrap();
        assert!(parsed.trace);
        assert!(parsed.config().trace);
        // Absent the flag, the rendered request is unchanged from the
        // pre-trace protocol and the config keeps tracing off.
        let plain = SolveRequest::new("vars 1\n");
        assert!(!plain.render().contains("trace"));
        assert!(!plain.config().trace);
    }

    #[test]
    fn batch_header_round_trips_and_reaches_config() {
        let request = SolveRequest::new("vars 1\n").with_batch(4);
        assert!(request.render().lines().any(|l| l == "batch 4"));
        let rest = request.render();
        let rest = rest.split_once('\n').unwrap().1;
        let parsed = SolveRequest::parse_body(&mut BufReader::new(rest.as_bytes())).unwrap();
        assert_eq!(parsed.batch, Some(4));
        assert_eq!(parsed.config().batch, Some(4));
        // Absent the header, the rendered request matches the pre-batch
        // protocol and the config defers to env/auto resolution.
        let plain = SolveRequest::new("vars 1\n");
        assert!(!plain.render().contains("batch"));
        assert_eq!(plain.config().batch, None);
        // Zero and oversized widths are protocol errors, not panics.
        for bad in ["batch 0\n", "batch 65\n"] {
            let text = format!("{bad}BEGIN PROBLEM\nEND PROBLEM\n");
            let mut reader = BufReader::new(text.as_bytes());
            assert!(SolveRequest::parse_body(&mut reader).is_err(), "{bad}");
        }
    }

    #[test]
    fn format_header_round_trips_for_every_format() {
        for format in Format::all() {
            let request = SolveRequest::new("p qubo 0 1 1 0\n0 0 -1\n").with_format(format);
            let rest = request.render();
            let rest = rest.split_once('\n').unwrap().1;
            let parsed = SolveRequest::parse_body(&mut BufReader::new(rest.as_bytes())).unwrap();
            assert_eq!(parsed.format, format, "{format}");
        }
        // Absent the header, the rendered request matches the
        // pre-format protocol and parses as native.
        let plain = SolveRequest::new("vars 1\n");
        assert!(!plain.render().contains("format"));
        assert_eq!(plain.format, Format::Native);
        // An unknown format is a protocol error naming the options.
        let text = "format dimacs\nBEGIN PROBLEM\nEND PROBLEM\n";
        let err = SolveRequest::parse_body(&mut BufReader::new(text.as_bytes())).unwrap_err();
        assert!(err.message().contains("dimacs"), "unexpected: {err}");
        assert!(err.message().contains("qubo-recover"), "unexpected: {err}");
    }

    #[test]
    fn expired_read_deadline_maps_to_structured_timeout() {
        // A reader whose underlying socket deadline fired: every read
        // fails with WouldBlock (Unix) or TimedOut (elsewhere).
        struct Stalled(std::io::ErrorKind);
        impl std::io::Read for Stalled {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::from(self.0))
            }
        }
        impl BufRead for Stalled {
            fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
                Err(std::io::Error::from(self.0))
            }
            fn consume(&mut self, _: usize) {}
        }
        for kind in [std::io::ErrorKind::WouldBlock, std::io::ErrorKind::TimedOut] {
            let err = SolveRequest::parse_body(&mut Stalled(kind)).unwrap_err();
            assert_eq!(err.kind(), "timeout", "{kind:?}");
            assert!(matches!(err, RequestError::Timeout(_)));
        }
        // Any other IO failure is still a bad request, not a timeout.
        let err = SolveRequest::parse_body(&mut Stalled(std::io::ErrorKind::ConnectionReset))
            .unwrap_err();
        assert_eq!(err.kind(), "bad-request");
    }

    /// Feeds `text` to an incremental parser one byte at a time and
    /// returns the first non-`More` progress.
    fn drip(text: &str) -> Result<ParseProgress, RequestError> {
        let mut parser = IncrementalParser::new();
        for byte in text.as_bytes() {
            match parser.feed(std::slice::from_ref(byte))? {
                ParseProgress::More => {}
                progress => return Ok(progress),
            }
        }
        parser.eof()
    }

    #[test]
    fn incremental_parser_matches_blocking_parse_byte_for_byte() {
        let request = SolveRequest::new("vars 2\nconstraint 1 : 1 1\n")
            .with_seed(7)
            .with_shots(256)
            .with_iterations(40)
            .with_retries(2)
            .with_degrade()
            .with_trace()
            .with_deadline_ms(5000)
            .with_batch(4)
            .with_format(Format::Qubo);
        let text = request.render();
        // One-byte-at-a-time (worst-case fragmentation) and one-shot
        // feeds both reproduce what the blocking reader parses.
        match drip(&text).unwrap() {
            ParseProgress::Request(parsed) => assert_eq!(*parsed, request),
            other => panic!("unexpected progress {other:?}"),
        }
        let mut parser = IncrementalParser::new();
        match parser.feed(text.as_bytes()).unwrap() {
            ParseProgress::Request(parsed) => assert_eq!(*parsed, request),
            other => panic!("unexpected progress {other:?}"),
        }
    }

    #[test]
    fn incremental_parser_handles_bare_verbs_and_errors() {
        assert_eq!(
            drip("RASENGAN/1 PING\n").unwrap(),
            ParseProgress::Verb(Verb::Ping)
        );
        // A verb line terminated by EOF instead of a newline still
        // parses — `read_line` yields the same final partial line.
        assert_eq!(
            drip("RASENGAN/1 STATS").unwrap(),
            ParseProgress::Verb(Verb::Stats)
        );
        assert!(drip("HTTP/1.1 GET /\r\n").is_err());
        assert_eq!(drip("").unwrap_err().message(), "empty request");
        // Truncation errors match the blocking reader's wording.
        let err = drip("RASENGAN/1 SOLVE\nseed 3\n").unwrap_err();
        assert!(err.message().contains("BEGIN PROBLEM"), "{err}");
        let err = drip("RASENGAN/1 SOLVE\nBEGIN PROBLEM\nvars 2\n").unwrap_err();
        assert!(err.message().contains("END PROBLEM"), "{err}");
        // Unknown headers and invalid UTF-8 are rejected mid-stream.
        let err = drip("RASENGAN/1 SOLVE\nvolume 11\n").unwrap_err();
        assert!(err.message().contains("volume"), "{err}");
        let mut parser = IncrementalParser::new();
        parser.feed(b"RASENGAN/1 SOLVE\nBEGIN PROBLEM\n").unwrap();
        assert!(parser.feed(&[0xff, 0xfe, b'\n']).is_err());
    }

    #[test]
    fn incremental_parser_tracks_verb_and_bounds_buffering() {
        let mut parser = IncrementalParser::new();
        assert!(!parser.verb_seen());
        parser.feed(b"RASENGAN/1 SOLVE\n").unwrap();
        assert!(parser.verb_seen());
        // A stream with no newline at all cannot buffer unboundedly.
        let mut hog = IncrementalParser::new();
        let chunk = vec![b'a'; 1 << 16];
        let mut result = Ok(ParseProgress::More);
        for _ in 0..((MAX_REQUEST_BYTES / chunk.len()) + 2) {
            result = hog.feed(&chunk);
            if result.is_err() {
                break;
            }
        }
        assert!(result.unwrap_err().message().contains("exceeds"));
        // An oversized body hits the same MAX_PROBLEM_BYTES cap as the
        // blocking path, even when the headers were tiny.
        let mut body = IncrementalParser::new();
        body.feed(b"RASENGAN/1 SOLVE\nBEGIN PROBLEM\n").unwrap();
        let line = vec![b'v'; 4095]
            .into_iter()
            .chain([b'\n'])
            .collect::<Vec<_>>();
        let mut err = None;
        for _ in 0..((MAX_PROBLEM_BYTES / line.len()) + 2) {
            if let Err(e) = body.feed(&line) {
                err = Some(e);
                break;
            }
        }
        assert!(err.unwrap().message().contains("problem body exceeds"));
    }

    #[test]
    fn via_header_round_trips_and_is_single_token() {
        let request = SolveRequest::new("vars 1\n").with_via("node-a");
        assert!(request.render().lines().any(|l| l == "via node-a"));
        let rest = request.render();
        let rest = rest.split_once('\n').unwrap().1;
        let parsed = SolveRequest::parse_body(&mut BufReader::new(rest.as_bytes())).unwrap();
        assert_eq!(parsed.via.as_deref(), Some("node-a"));
        // Absent the header, the rendered request is unchanged from the
        // pre-fabric protocol.
        let plain = SolveRequest::new("vars 1\n");
        assert!(!plain.render().contains("via"));
        // A multi-token or empty via is a protocol error.
        for bad in ["via two words\n", "via\n"] {
            let text = format!("{bad}BEGIN PROBLEM\nEND PROBLEM\n");
            let mut reader = BufReader::new(text.as_bytes());
            assert!(SolveRequest::parse_body(&mut reader).is_err(), "{bad}");
        }
    }

    #[test]
    fn gossip_round_trips_blocking_and_incremental() {
        let message = GossipMessage {
            from_id: "n0".to_string(),
            from_addr: "127.0.0.1:4100".to_string(),
            members: vec![
                GossipMember {
                    id: "n0".to_string(),
                    addr: "127.0.0.1:4100".to_string(),
                    state: GossipState::Alive,
                },
                GossipMember {
                    id: "n1".to_string(),
                    addr: "127.0.0.1:4101".to_string(),
                    state: GossipState::Suspect,
                },
                GossipMember {
                    id: "n2".to_string(),
                    addr: "127.0.0.1:4102".to_string(),
                    state: GossipState::Dead,
                },
            ],
        };
        let text = message.render();
        let mut lines = text.lines();
        assert_eq!(parse_verb(lines.next().unwrap()).unwrap(), Verb::Gossip);
        let rest = text.split_once('\n').unwrap().1;
        let parsed = GossipMessage::parse_body(&mut BufReader::new(rest.as_bytes())).unwrap();
        assert_eq!(parsed, message);
        // The incremental parser yields the same message byte-for-byte.
        match drip(&text).unwrap() {
            ParseProgress::Gossip(parsed) => assert_eq!(*parsed, message),
            other => panic!("unexpected progress {other:?}"),
        }
    }

    #[test]
    fn malformed_gossip_is_rejected() {
        // Missing `from` line.
        let mut reader = BufReader::new("member a b alive\nEND GOSSIP\n".as_bytes());
        let err = GossipMessage::parse_body(&mut reader).unwrap_err();
        assert!(err.message().contains("from"), "{err}");
        // Unknown state token.
        let mut reader = BufReader::new("from a b\nmember a b zombie\nEND GOSSIP\n".as_bytes());
        assert!(GossipMessage::parse_body(&mut reader).is_err());
        // Truncated stream (both paths agree on the wording).
        let mut reader = BufReader::new("from a b\n".as_bytes());
        let err = GossipMessage::parse_body(&mut reader).unwrap_err();
        assert!(err.message().contains("END GOSSIP"), "{err}");
        let err = drip("RASENGAN/1 GOSSIP\nfrom a b\n").unwrap_err();
        assert!(err.message().contains("END GOSSIP"), "{err}");
        // A junk line is named in the error.
        let mut reader = BufReader::new("from a b\npeers everywhere\n".as_bytes());
        let err = GossipMessage::parse_body(&mut reader).unwrap_err();
        assert!(err.message().contains("peers"), "{err}");
    }

    #[test]
    fn reply_round_trips() {
        let reply = Reply::new(
            ReplyStatus::Busy,
            vec![(
                "service",
                Json::obj(vec![
                    ("queue_depth", Json::Int(8)),
                    ("queue_capacity", Json::Int(8)),
                ]),
            )],
        );
        let parsed = Reply::parse(&reply.render()).unwrap();
        assert_eq!(parsed, reply);
        assert_eq!(
            parsed.json("service").unwrap().get("queue_depth").unwrap(),
            &Json::Int(8)
        );
    }
}
