//! The solve service: TCP front end, worker pool, caches, admission
//! control.
//!
//! Two front ends share one worker pool and one set of semantics:
//!
//! * **Reactor** (default on Linux x86_64/aarch64): a single epoll
//!   event loop ([`crate::reactor`]) owns every socket in non-blocking
//!   mode, parses requests incrementally, and enforces IO deadlines
//!   with a timer wheel. Concurrent-connection capacity is bounded by
//!   file descriptors, not threads.
//! * **Threaded** (`--legacy-threads`, and every other platform): one
//!   accept thread reads each connection's verb line with blocking IO
//!   and `SO_RCVTIMEO`/`SO_SNDTIMEO` deadlines; a worker holds the
//!   socket for the whole request. Capacity is bounded by the worker
//!   count.
//!
//! Either way, `STATS`/`PING` are answered inline by the front end and
//! `SOLVE` work is pushed onto a bounded queue
//! ([`rasengan_qsim::parallel::BoundedQueue`]) drained by a fixed
//! worker pool. When the queue is full the request is shed immediately
//! with a structured `BUSY` response — the front end never blocks on
//! solver work, so load-shedding stays responsive under saturation.
//! Both front ends produce byte-identical replies: they share the
//! verb/header/body grammar (one incremental, one blocking, over the
//! same line-level helpers) and [`solve_reply`], which holds all
//! solve-side semantics (caches, persist tier, counters).
//!
//! # Determinism
//!
//! A served solve is bit-identical to an in-process
//! [`Rasengan::solve`] with the same request knobs, at any worker
//! count: workers share nothing but the caches, every solve derives
//! its randomness from the request's seed alone, and cached results
//! are the bytes the original solve produced. The determinism suite
//! byte-compares `result` sections across 1-worker, 4-worker, and
//! in-process runs.
//!
//! # Caches
//!
//! * **Result cache** — finished [`Outcome`]s keyed on the problem
//!   [`fingerprint`](rasengan_problems::fingerprint) plus every
//!   training knob the request can set. Worker-thread count and the
//!   trajectory batch width are *not* part of the key: results are
//!   invariant under both.
//! * **Compile cache** — [`Prepared`] artifacts (reduced basis,
//!   transition chain, segment plan) keyed on fingerprint alone. That
//!   key is sound because [`Rasengan::prepare`] reads only
//!   compile-side knobs (simplify, prune, early-stop, segmentation,
//!   depth budget), which the protocol pins to their defaults.
//!
//! # Shutdown
//!
//! [`ServerHandle::shutdown`] (also run on drop) sets the stop flag,
//! nudges the listener awake, joins the accept thread, closes the
//! queue, and joins the workers — which first drain every request
//! already admitted. Nothing already queued is dropped.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rasengan_core::solver::{Outcome, Prepared, Rasengan};
use rasengan_obs::metrics::{install_global, Registry};
use rasengan_problems::ingest::parse_as;
use rasengan_qsim::parallel::BoundedQueue;

use crate::cache::ShardedLru;
use crate::fabric::{Fabric, FabricConfig, FabricStats};
use crate::json::Json;
use crate::persist::{OutcomeKey, Persist, PersistStats, StorageFaultPlan};
use crate::protocol::{
    error_sections, outcome_json, parse_verb, timing_json, GossipMessage, Reply, ReplyStatus,
    RequestError, SolveRequest, Verb,
};

/// Service tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Solve worker threads.
    pub workers: usize,
    /// Admission queue capacity; requests beyond it are shed.
    pub queue_capacity: usize,
    /// Result cache capacity (finished outcomes).
    pub result_cache_capacity: usize,
    /// Compile cache capacity (prepared artifacts).
    pub compile_cache_capacity: usize,
    /// Engine threads per solve; `None` defers to `RASENGAN_THREADS`.
    pub solver_threads: Option<usize>,
    /// Socket read/write timeout, bounding how long a slow client can
    /// hold a thread.
    pub io_timeout: Duration,
    /// Trace every solve, even when the request omits the `trace`
    /// flag. Responses gain a `trace` section; `result` bytes are
    /// unchanged.
    pub trace_all: bool,
    /// Crash-safe on-disk warm-state tier ([`crate::persist`]). `None`
    /// keeps the service memory-only; `Some(dir)` opens (and recovers)
    /// the state directory at startup, loads cache misses from disk,
    /// and flushes fresh compiles and untraced outcomes back.
    pub state_dir: Option<PathBuf>,
    /// Deterministic storage fault injection applied to every persist
    /// write — test scaffolding for the corruption matrix, never armed
    /// in production configs.
    pub storage_faults: Option<StorageFaultPlan>,
    /// Use the epoll reactor front end instead of the blocking accept
    /// thread. Defaults to `true` where the reactor is supported
    /// (Linux x86_64/aarch64) and is ignored — falling back to the
    /// threaded front end — everywhere else.
    pub event_loop: bool,
    /// Pins each accepted socket's kernel send buffer (`SO_SNDBUF`),
    /// bounding per-connection kernel memory. `None` leaves the
    /// kernel's autotuning in charge. Linux-only; ignored elsewhere.
    pub send_buffer_bytes: Option<u32>,
    /// Join a multi-node solve fabric ([`crate::fabric`]): requests
    /// whose fingerprint hashes to another live member are forwarded
    /// there over the line protocol, so every node's caches compose.
    /// `None` keeps the node standalone.
    pub fabric: Option<FabricConfig>,
}

/// Whether the epoll reactor front end can run on this target (the
/// raw-syscall shim in [`crate::sys`] is Linux x86_64/aarch64 only).
pub const EVENT_LOOP_SUPPORTED: bool = cfg!(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
));

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 64,
            result_cache_capacity: 256,
            compile_cache_capacity: 64,
            solver_threads: None,
            io_timeout: Duration::from_secs(30),
            trace_all: false,
            state_dir: None,
            storage_faults: None,
            event_loop: EVENT_LOOP_SUPPORTED,
            send_buffer_bytes: None,
            fabric: None,
        }
    }
}

impl ServeConfig {
    /// Sets the bind address.
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the admission queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Sets both cache capacities.
    pub fn with_cache_capacities(mut self, results: usize, compiles: usize) -> Self {
        self.result_cache_capacity = results;
        self.compile_cache_capacity = compiles;
        self
    }

    /// Pins the per-solve engine thread count.
    pub fn with_solver_threads(mut self, threads: usize) -> Self {
        self.solver_threads = Some(threads);
        self
    }

    /// Traces every solve regardless of the request's `trace` flag.
    pub fn with_trace_all(mut self) -> Self {
        self.trace_all = true;
        self
    }

    /// Sets the per-connection socket read/write timeout.
    pub fn with_io_timeout(mut self, timeout: Duration) -> Self {
        self.io_timeout = timeout;
        self
    }

    /// Enables the crash-safe on-disk warm-state tier rooted at `dir`.
    pub fn with_state_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.state_dir = Some(dir.into());
        self
    }

    /// Arms deterministic storage fault injection on persist writes.
    pub fn with_storage_faults(mut self, plan: StorageFaultPlan) -> Self {
        self.storage_faults = Some(plan);
        self
    }

    /// Selects the front end: `true` for the epoll reactor (where
    /// supported), `false` for the legacy thread-per-connection path.
    pub fn with_event_loop(mut self, enabled: bool) -> Self {
        self.event_loop = enabled;
        self
    }

    /// Pins each accepted socket's kernel send buffer (`SO_SNDBUF`).
    pub fn with_send_buffer_bytes(mut self, bytes: u32) -> Self {
        self.send_buffer_bytes = Some(bytes);
        self
    }

    /// Joins the multi-node solve fabric described by `fabric`.
    pub fn with_fabric(mut self, fabric: FabricConfig) -> Self {
        self.fabric = Some(fabric);
        self
    }
}

/// Applies the configured `SO_SNDBUF` pin to a freshly-accepted
/// socket. A no-op when unconfigured or on targets without the raw
/// syscall shim.
pub(crate) fn apply_send_buffer(config: &ServeConfig, stream: &TcpStream) {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    if let Some(bytes) = config.send_buffer_bytes {
        use std::os::fd::AsRawFd;
        let _ = crate::sys::set_send_buffer(stream.as_raw_fd(), bytes);
    }
    #[cfg(not(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    )))]
    let _ = (config, stream);
}

/// Everything a request needs beyond the problem itself — the result
/// cache key. Worker and engine thread counts are deliberately absent,
/// and so is the trajectory batch width (`batch` header): outcomes are
/// bit-identical at any parallelism or lane count, so a result computed
/// under one thread/batch configuration serves every other.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct ResultKey {
    fingerprint: u128,
    seed: u64,
    shots: Option<usize>,
    iterations: Option<usize>,
    retries: usize,
    degrade: bool,
    deadline_ms: Option<u64>,
    /// Whether the cached outcome carries a span tree. A traced and an
    /// untraced solve produce byte-identical `result` sections, but a
    /// cached untraced outcome has no tree to put in the `trace`
    /// section, so the two must not share a cache slot.
    trace: bool,
}

impl ResultKey {
    fn new(fingerprint: u128, request: &SolveRequest, trace: bool) -> Self {
        ResultKey {
            fingerprint,
            seed: request.seed,
            shots: request.shots,
            iterations: request.iterations,
            retries: request.retries,
            degrade: request.degrade,
            deadline_ms: request.deadline_ms,
            trace,
        }
    }

    /// The disk-tier address of this key. `None` for traced requests:
    /// the persisted codec drops span trees, so a disk record could
    /// never satisfy a traced response.
    fn disk_key(&self) -> Option<OutcomeKey> {
        (!self.trace).then_some(OutcomeKey {
            fingerprint: self.fingerprint,
            seed: self.seed,
            shots: self.shots,
            iterations: self.iterations,
            retries: self.retries,
            degrade: self.degrade,
            deadline_ms: self.deadline_ms,
        })
    }
}

/// An admitted connection on the legacy path: the buffered stream
/// (verb line already consumed) and its admission timestamp. The
/// worker owns the socket for the whole request.
pub(crate) struct Job {
    reader: std::io::BufReader<TcpStream>,
    enqueued: Instant,
}

/// A reactor-parsed request: the worker computes a [`Reply`] and hands
/// it back over the [`ReactorLink`](crate::reactor::ReactorLink);
/// sockets stay with the reactor.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub(crate) struct ParsedJob {
    pub(crate) token: u64,
    pub(crate) request: Box<SolveRequest>,
    pub(crate) enqueued: Instant,
}

/// What travels over the admission queue — which front end admitted
/// the request decides whether the worker writes the socket itself or
/// routes the reply back through the reactor.
pub(crate) enum Work {
    Legacy(Job),
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    Parsed(ParsedJob),
}

pub(crate) struct Shared {
    pub(crate) config: ServeConfig,
    pub(crate) queue: BoundedQueue<Work>,
    pub(crate) shutdown: AtomicBool,
    pub(crate) accepted: AtomicU64,
    served_ok: AtomicU64,
    served_error: AtomicU64,
    pub(crate) shed: AtomicU64,
    pub(crate) bad_requests: AtomicU64,
    pub(crate) timeouts: AtomicU64,
    compiled_program_hits: AtomicU64,
    /// Reactor gauges/counters: connections currently open, readable
    /// events dispatched, writes that hit a full socket buffer, and
    /// event-loop iterations. All zero on the legacy front end.
    pub(crate) conns_open: AtomicU64,
    pub(crate) readable_events: AtomicU64,
    pub(crate) writable_stalls: AtomicU64,
    pub(crate) loop_iterations: AtomicU64,
    results: ShardedLru<ResultKey, Arc<Outcome>>,
    compiles: ShardedLru<u128, Arc<Prepared>>,
    /// Read-through copies of forwarded replies: the owner's sections
    /// (minus `service`), cached verbatim so a repeat request on this
    /// non-owner node answers locally with byte-identical `result`.
    remote: ShardedLru<ResultKey, Arc<Vec<(String, String)>>>,
    /// The multi-node fabric state, when the config joins one.
    pub(crate) fabric: Option<Arc<Fabric>>,
    /// The on-disk warm-state tier, when `--state-dir` is set.
    persist: Option<Persist>,
    /// The workers' route back to the reactor; `None` on the legacy
    /// front end.
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    reactor: Option<Arc<crate::reactor::ReactorLink>>,
    /// The process-wide metrics registry (`obs`). The engine's own
    /// hooks (fusion counters, queue depth) land here too, so a
    /// `STATS` snapshot covers the whole stack.
    registry: &'static Registry,
}

/// A point-in-time snapshot of the service counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Connections accepted.
    pub accepted: u64,
    /// Solves answered `OK`.
    pub served_ok: u64,
    /// Solves answered `ERROR` (solver-side failures).
    pub served_error: u64,
    /// Requests shed with `BUSY`.
    pub shed: u64,
    /// Malformed requests rejected.
    pub bad_requests: u64,
    /// Connections dropped because the per-connection IO deadline
    /// expired mid-request.
    pub timeouts: u64,
    /// Result-cache hits / misses.
    pub result_hits: u64,
    /// Result-cache misses.
    pub result_misses: u64,
    /// Compile-cache hits.
    pub compile_hits: u64,
    /// Compile-cache misses.
    pub compile_misses: u64,
    /// Compile-cache hits whose [`Prepared`] carried compiled segment
    /// programs — the warm path that skips both `prepare` *and* the
    /// per-segment [`SegmentProgram`](rasengan_core::segment::SegmentProgram)
    /// compile.
    pub compiled_program_hits: u64,
    /// Requests currently waiting in the admission queue.
    pub queue_depth: usize,
    /// Connections currently open on the reactor front end (zero on
    /// the legacy path, which has no connection table).
    pub conns_open: u64,
    /// Readable events dispatched by the reactor.
    pub readable_events: u64,
    /// Reply writes that hit a full socket buffer and had to wait for
    /// writability (reactor front end).
    pub writable_stalls: u64,
    /// Reactor event-loop iterations.
    pub loop_iterations: u64,
    /// Disk-tier counters (all zero when no state dir is configured).
    pub persist: PersistStats,
    /// Fabric counters (all zero when the node is standalone).
    pub fabric: FabricStats,
}

impl Shared {
    fn stats(&self) -> ServeStats {
        ServeStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            served_ok: self.served_ok.load(Ordering::Relaxed),
            served_error: self.served_error.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            bad_requests: self.bad_requests.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            result_hits: self.results.hits(),
            result_misses: self.results.misses(),
            compile_hits: self.compiles.hits(),
            compile_misses: self.compiles.misses(),
            compiled_program_hits: self.compiled_program_hits.load(Ordering::Relaxed),
            queue_depth: self.queue.len(),
            conns_open: self.conns_open.load(Ordering::Relaxed),
            readable_events: self.readable_events.load(Ordering::Relaxed),
            writable_stalls: self.writable_stalls.load(Ordering::Relaxed),
            loop_iterations: self.loop_iterations.load(Ordering::Relaxed),
            persist: self.persist.as_ref().map(|p| p.stats()).unwrap_or_default(),
            fabric: self.fabric.as_ref().map(|f| f.stats()).unwrap_or_default(),
        }
    }

    pub(crate) fn stats_json(&self) -> Json {
        let s = self.stats();
        // Mirror the reactor counters into the registry so they ride
        // in the `metrics` section alongside the engine's own hooks.
        let clamp = |v: u64| v.min(i64::MAX as u64) as i64;
        self.registry
            .gauge_set("serve.conns_open", clamp(s.conns_open));
        self.registry
            .gauge_set("serve.readable_events", clamp(s.readable_events));
        self.registry
            .gauge_set("serve.writable_stalls", clamp(s.writable_stalls));
        self.registry
            .gauge_set("serve.loop_iterations", clamp(s.loop_iterations));
        Json::obj(vec![
            ("accepted", Json::Int(s.accepted as i128)),
            ("served_ok", Json::Int(s.served_ok as i128)),
            ("served_error", Json::Int(s.served_error as i128)),
            ("shed", Json::Int(s.shed as i128)),
            ("bad_requests", Json::Int(s.bad_requests as i128)),
            ("result_hits", Json::Int(s.result_hits as i128)),
            ("result_misses", Json::Int(s.result_misses as i128)),
            ("compile_hits", Json::Int(s.compile_hits as i128)),
            ("compile_misses", Json::Int(s.compile_misses as i128)),
            (
                "compiled_program_hits",
                Json::Int(s.compiled_program_hits as i128),
            ),
            ("queue_depth", Json::Int(s.queue_depth as i128)),
            ("queue_capacity", Json::Int(self.queue.capacity() as i128)),
            ("workers", Json::Int(self.config.workers as i128)),
            ("timeouts", Json::Int(s.timeouts as i128)),
            ("conns_open", Json::Int(s.conns_open as i128)),
            ("readable_events", Json::Int(s.readable_events as i128)),
            ("writable_stalls", Json::Int(s.writable_stalls as i128)),
            ("loop_iterations", Json::Int(s.loop_iterations as i128)),
            (
                "fabric",
                match &self.fabric {
                    Some(fabric) => {
                        // Mirror the fabric counters into the registry
                        // (monotone, so `counter_max` makes stale
                        // snapshots harmless) alongside the gauges.
                        let f = fabric.stats();
                        for (name, value) in [
                            ("fabric.forwards_out", f.forwards_out),
                            ("fabric.forwards_in", f.forwards_in),
                            ("fabric.remote_hits", f.remote_hits),
                            ("fabric.forward_errors", f.forward_errors),
                            ("fabric.peer_suspect", f.peer_suspect),
                            ("fabric.peer_dead", f.peer_dead),
                            ("fabric.gossip_rounds", f.gossip_rounds),
                        ] {
                            self.registry.counter_max(name, value);
                        }
                        self.registry
                            .gauge_set("fabric.ring_version", clamp(f.ring_version));
                        self.registry
                            .gauge_set("fabric.members_alive", clamp(f.members_alive));
                        fabric.stats_json()
                    }
                    None => Json::obj(vec![("enabled", Json::Bool(false))]),
                },
            ),
            (
                "persist",
                Json::obj(vec![
                    ("enabled", Json::Bool(self.persist.is_some())),
                    ("disk_hits", Json::Int(s.persist.disk_hits as i128)),
                    ("disk_misses", Json::Int(s.persist.disk_misses as i128)),
                    ("quarantined", Json::Int(s.persist.quarantined as i128)),
                    ("flushes", Json::Int(s.persist.flushes as i128)),
                    (
                        "faults_injected",
                        Json::Int(s.persist.faults_injected as i128),
                    ),
                    ("recovered", Json::Int(s.persist.recovered as i128)),
                    ("tmp_cleaned", Json::Int(s.persist.tmp_cleaned as i128)),
                ]),
            ),
            ("metrics", self.registry.snapshot_json()),
        ])
    }
}

/// A running service. Dropping the handle shuts the service down
/// gracefully (drains admitted work, then joins every thread).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    gossip: Option<JoinHandle<()>>,
}

/// Binds the address in `config` and starts the accept thread and
/// worker pool.
///
/// # Errors
///
/// Returns the bind error if the address is unavailable, or the
/// filesystem error if a configured state directory cannot be opened.
/// Corrupt state *records* are never an error — the recovery scan
/// quarantines them.
pub fn serve(config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    // Installing the global registry also switches on the engine's
    // metric hooks (gate fusion, trajectory-plan cache, queues).
    let registry = install_global();
    let persist = match &config.state_dir {
        Some(dir) => Some(Persist::open_with(
            dir.clone(),
            config.storage_faults,
            Some(registry),
        )?),
        None => None,
    };
    // The fabric learns this node's dial address from the actual bind
    // (ephemeral ports are only known now) unless one is advertised.
    let fabric = config.fabric.clone().map(|fabric_config| {
        let self_addr = fabric_config
            .advertise
            .clone()
            .unwrap_or_else(|| addr.to_string());
        Arc::new(Fabric::new(fabric_config, self_addr))
    });
    let event_loop = config.event_loop && EVENT_LOOP_SUPPORTED;
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    let reactor_link = if event_loop {
        Some(Arc::new(crate::reactor::ReactorLink::new()?))
    } else {
        None
    };
    let shared = Arc::new(Shared {
        queue: BoundedQueue::new(config.queue_capacity.max(1)),
        shutdown: AtomicBool::new(false),
        accepted: AtomicU64::new(0),
        served_ok: AtomicU64::new(0),
        served_error: AtomicU64::new(0),
        shed: AtomicU64::new(0),
        bad_requests: AtomicU64::new(0),
        timeouts: AtomicU64::new(0),
        compiled_program_hits: AtomicU64::new(0),
        conns_open: AtomicU64::new(0),
        readable_events: AtomicU64::new(0),
        writable_stalls: AtomicU64::new(0),
        loop_iterations: AtomicU64::new(0),
        results: ShardedLru::new(config.result_cache_capacity, 8),
        compiles: ShardedLru::new(config.compile_cache_capacity, 4),
        remote: ShardedLru::new(config.result_cache_capacity, 8),
        fabric: fabric.clone(),
        persist,
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        reactor: reactor_link.clone(),
        registry,
        config,
    });

    let workers = (0..shared.config.workers.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("rasengan-serve-worker-{i}"))
                .spawn(move || {
                    while let Some(work) = shared.queue.pop() {
                        match work {
                            Work::Legacy(job) => handle_solve(&shared, job),
                            #[cfg(all(
                                target_os = "linux",
                                any(target_arch = "x86_64", target_arch = "aarch64")
                            ))]
                            Work::Parsed(job) => {
                                let queue_s = job.enqueued.elapsed().as_secs_f64();
                                let reply =
                                    solve_reply(&shared, &job.request, queue_s, job.enqueued);
                                if let Some(link) = &shared.reactor {
                                    link.complete(job.token, reply);
                                }
                            }
                        }
                    }
                })
                .expect("spawn worker thread")
        })
        .collect();

    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    let accept = match reactor_link {
        Some(link) => crate::reactor::spawn(listener, Arc::clone(&shared), link)?,
        None => spawn_accept_thread(listener, &shared),
    };
    #[cfg(not(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    )))]
    let accept = spawn_accept_thread(listener, &shared);

    // The gossip heartbeat: one round immediately (a fresh node joins
    // the ring before its first request), then one per interval until
    // shutdown.
    let gossip = fabric.map(|fabric| {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("rasengan-serve-gossip".to_string())
            .spawn(move || {
                let interval = fabric.config().heartbeat;
                while !shared.shutdown.load(Ordering::SeqCst) {
                    fabric.tick();
                    std::thread::sleep(interval);
                }
            })
            .expect("spawn gossip thread")
    });

    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
        workers,
        gossip,
    })
}

fn spawn_accept_thread(listener: TcpListener, shared: &Arc<Shared>) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name("rasengan-serve-accept".to_string())
        .spawn(move || accept_loop(listener, &shared))
        .expect("spawn accept thread")
}

impl ServerHandle {
    /// The bound address (resolves the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats()
    }

    /// Graceful shutdown: stop accepting, drain every admitted
    /// request, join all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.accept.is_none() {
            return;
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the front end: the reactor gets an eventfd write and
        // drains live connections before exiting; the legacy accept
        // thread gets a nudge connection out of `accept()` and
        // re-checks the flag before handling it.
        let mut woke = false;
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        if let Some(link) = &self.shared.reactor {
            link.notify();
            woke = true;
        }
        if !woke {
            let _ = TcpStream::connect(self.addr);
        }
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // No new work can arrive now; close the queue so workers exit
        // once they have drained what was already admitted.
        self.shared.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // The gossip thread re-checks the flag each heartbeat; joining
        // waits at most one interval plus one round of (bounded)
        // gossip roundtrips.
        if let Some(gossip) = self.gossip.take() {
            let _ = gossip.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, shared: &Shared) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(stream) => stream,
            Err(_) => continue,
        };
        shared.accepted.fetch_add(1, Ordering::Relaxed);
        apply_send_buffer(&shared.config, &stream);
        let _ = stream.set_read_timeout(Some(shared.config.io_timeout));
        let _ = stream.set_write_timeout(Some(shared.config.io_timeout));
        let mut reader = std::io::BufReader::new(stream);
        let mut verb_line = String::new();
        use std::io::BufRead;
        if reader.read_line(&mut verb_line).is_err() {
            shared.bad_requests.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        match parse_verb(&verb_line) {
            Ok(Verb::Ping) => {
                let reply = Reply::new(ReplyStatus::Ok, vec![("pong", Json::obj(vec![]))]);
                write_reply_tracked(shared, reader.get_mut(), &reply);
            }
            Ok(Verb::Stats) => {
                let reply = Reply::new(ReplyStatus::Ok, vec![("stats", shared.stats_json())]);
                write_reply_tracked(shared, reader.get_mut(), &reply);
            }
            Ok(Verb::Gossip) => {
                // Membership exchanges are answered inline like STATS:
                // they never queue behind solves, so a saturated node
                // still heartbeats.
                let reply = match GossipMessage::parse_body(&mut reader) {
                    Ok(message) => gossip_reply(shared, &message),
                    Err(err) => {
                        let counter = match err {
                            RequestError::Timeout(_) => &shared.timeouts,
                            RequestError::Malformed(_) => &shared.bad_requests,
                        };
                        counter.fetch_add(1, Ordering::Relaxed);
                        request_error_reply(&err)
                    }
                };
                write_reply_tracked(shared, reader.get_mut(), &reply);
            }
            Ok(Verb::Solve) => {
                let job = Job {
                    reader,
                    enqueued: Instant::now(),
                };
                if let Err(Work::Legacy(mut job)) = shared.queue.try_push(Work::Legacy(job)) {
                    shared.shed.fetch_add(1, Ordering::Relaxed);
                    write_reply_tracked(shared, job.reader.get_mut(), &busy_reply(shared));
                }
            }
            Err(message) => {
                shared.bad_requests.fetch_add(1, Ordering::Relaxed);
                let reply = bad_request_reply(&message);
                write_reply_tracked(shared, reader.get_mut(), &reply);
            }
        }
    }
}

/// The structured shed response, quoting the queue state that caused
/// it. Shared by both front ends so `BUSY` bytes match.
pub(crate) fn busy_reply(shared: &Shared) -> Reply {
    Reply::new(
        ReplyStatus::Busy,
        vec![(
            "service",
            Json::obj(vec![
                ("queue_depth", Json::Int(shared.queue.len() as i128)),
                ("queue_capacity", Json::Int(shared.queue.capacity() as i128)),
            ]),
        )],
    )
}

/// Answers a `GOSSIP` exchange: merge-and-reply on a fabric node, a
/// structured rejection on a standalone one. Shared by both front
/// ends.
pub(crate) fn gossip_reply(shared: &Shared, message: &GossipMessage) -> Reply {
    match &shared.fabric {
        Some(fabric) => fabric.handle_gossip(message),
        None => bad_request_reply("fabric not enabled on this node"),
    }
}

pub(crate) fn bad_request_reply(message: &str) -> Reply {
    Reply::new(
        ReplyStatus::Error,
        vec![(
            "error",
            Json::obj(vec![
                ("kind", Json::Str("bad-request".to_string())),
                ("message", Json::Str(message.to_string())),
            ]),
        )],
    )
}

fn write_reply(stream: &mut TcpStream, reply: &Reply) -> std::io::Result<()> {
    stream.write_all(reply.render().as_bytes())?;
    stream.flush()
}

/// Writes a reply on the legacy path, counting a `timeouts` tick when
/// the socket's `SO_SNDTIMEO` deadline expires mid-write (a client
/// that stopped reading its response). Other write failures mean the
/// client is already gone — nothing useful to do about those.
fn write_reply_tracked(shared: &Shared, stream: &mut TcpStream, reply: &Reply) {
    if let Err(err) = write_reply(stream, reply) {
        if matches!(
            err.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ) {
            shared.timeouts.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A structured error reply for a failed request read, carrying the
/// error's own `kind` tag (`timeout` or `bad-request`).
pub(crate) fn request_error_reply(err: &RequestError) -> Reply {
    Reply::new(
        ReplyStatus::Error,
        vec![(
            "error",
            Json::obj(vec![
                ("kind", Json::Str(err.kind().to_string())),
                ("message", Json::Str(err.message().to_string())),
            ]),
        )],
    )
}

/// Serves one admitted `SOLVE` connection on a legacy worker thread:
/// parse the body off the socket, compute the reply, write it back.
fn handle_solve(shared: &Shared, mut job: Job) {
    let queue_s = job.enqueued.elapsed().as_secs_f64();
    let request = match SolveRequest::parse_body(&mut job.reader) {
        Ok(request) => request,
        Err(err) => {
            let counter = match err {
                RequestError::Timeout(_) => &shared.timeouts,
                RequestError::Malformed(_) => &shared.bad_requests,
            };
            counter.fetch_add(1, Ordering::Relaxed);
            write_reply_tracked(shared, job.reader.get_mut(), &request_error_reply(&err));
            return;
        }
    };
    let reply = solve_reply(shared, &request, queue_s, job.enqueued);
    write_reply_tracked(shared, job.reader.get_mut(), &reply);
}

/// Computes the full reply for a parsed `SOLVE` request — caches, disk
/// tier, prepare, solve, counters, metrics — without touching any
/// socket. Both front ends call this, so their `result` bytes are
/// identical by construction.
fn solve_reply(shared: &Shared, request: &SolveRequest, queue_s: f64, enqueued: Instant) -> Reply {
    let problem = match parse_as(request.format, &request.problem_text) {
        Ok(problem) => problem,
        Err(err) => {
            shared.bad_requests.fetch_add(1, Ordering::Relaxed);
            return bad_request_reply(&format!("problem ({}): {err}", request.format));
        }
    };

    let fingerprint = problem.fingerprint();
    let trace = request.trace || shared.config.trace_all;
    let key = ResultKey::new(fingerprint, request, trace);
    // Arrival accounting first: a forwarded request counts as
    // `forwards_in` no matter which tier ends up answering it.
    if let Some(fabric) = &shared.fabric {
        if request.via.is_some() {
            fabric.count_forward_in();
        }
    }
    if let Some(cached) = shared.results.get(&key) {
        let mut outcome = (*cached).clone();
        outcome.latency.stages.queue_s = queue_s;
        outcome.latency.stages.cache_hit = true;
        return ok_reply(shared, &outcome, fingerprint, queue_s, enqueued, "hit");
    }

    // Fabric tiers: the local read-through copy of a previously
    // forwarded reply answers without any network (the sections are
    // the owner's bytes, cached verbatim).
    if let Some(fabric) = &shared.fabric {
        if let Some(sections) = shared.remote.get(&key) {
            fabric.count_remote_hit();
            return forwarded_reply(
                shared,
                (*sections).clone(),
                fingerprint,
                queue_s,
                enqueued,
                "remote-hit",
                None,
            );
        }
    }

    // Memory miss: the disk tier is next. A validated record promotes
    // back into the in-memory LRU; anything corrupt was quarantined by
    // the load and falls through to a recompute.
    let disk_key = key.disk_key();
    if let (Some(persist), Some(disk_key)) = (&shared.persist, &disk_key) {
        if let Some(outcome) = persist.load_outcome(disk_key) {
            shared
                .results
                .insert(key.clone(), Arc::new(outcome.clone()));
            let mut outcome = outcome;
            outcome.latency.stages.queue_s = queue_s;
            outcome.latency.stages.cache_hit = true;
            return ok_reply(shared, &outcome, fingerprint, queue_s, enqueued, "disk-hit");
        }
    }

    // Fabric forwarding: every local tier missed, this node is not
    // the owner, and the request has not already hopped (`via` bounds
    // routing to one hop). A bounded number of workers may wait on
    // the network at once — at least one worker always stays free to
    // compute, so two nodes forwarding to each other can never
    // deadlock the pools. On any failure the solve falls through to a
    // local compute: it is deterministic, so the bytes are identical
    // either way, only cache placement differs.
    if let Some(fabric) = &shared.fabric {
        if request.via.is_none() {
            let owner = fabric.owner(fingerprint);
            if let Some(owner) = owner.filter(|o| !o.is_self) {
                let permit =
                    fabric.try_forward_permit(shared.config.workers.saturating_sub(1) as u64);
                if let Some(_permit) = permit {
                    let mut forwarded = request.clone();
                    forwarded.trace = trace;
                    forwarded.via = Some(fabric.node_id().to_string());
                    match fabric.forward(&owner.addr, &forwarded.render()) {
                        Ok(reply)
                            if reply.status == ReplyStatus::Ok
                                && reply.section("result").is_some() =>
                        {
                            let owner_note = reply
                                .json("service")
                                .ok()
                                .and_then(|s| {
                                    s.get("cache").and_then(|c| c.as_str()).map(str::to_string)
                                })
                                .unwrap_or_else(|| "miss".to_string());
                            let sections: Vec<(String, String)> = reply
                                .sections
                                .iter()
                                .filter(|(name, _)| name.as_str() != "service")
                                .cloned()
                                .collect();
                            if fabric.config().read_through {
                                shared.remote.insert(key, Arc::new(sections.clone()));
                            }
                            return forwarded_reply(
                                shared,
                                sections,
                                fingerprint,
                                queue_s,
                                enqueued,
                                &format!("forward-{owner_note}"),
                                Some(&owner.id),
                            );
                        }
                        Ok(reply) if reply.status == ReplyStatus::Error => {
                            // Solver errors are as deterministic as
                            // results; the owner's sections are what a
                            // local compute would produce.
                            shared.served_error.fetch_add(1, Ordering::Relaxed);
                            return reply;
                        }
                        // BUSY (the owner is shedding) or a malformed
                        // OK: compute locally.
                        Ok(_) => {}
                        Err(_) => fabric.note_unreachable(&owner.id),
                    }
                }
            }
        }
    }

    let mut config = request.config().with_trace(trace);
    if let Some(threads) = shared.config.solver_threads {
        config = config.with_threads(threads);
    }
    let solver = Rasengan::new(config);

    let (prepared, cache_note, prepare_s) = match shared.compiles.get(&fingerprint) {
        Some(prepared) => {
            // A hit on a [`Prepared`] with compiled segment programs
            // means the solve reuses them directly — no recompilation
            // on the warm path.
            if !prepared.programs.is_empty() {
                shared.compiled_program_hits.fetch_add(1, Ordering::Relaxed);
            }
            (prepared, "compile-hit", 0.0)
        }
        None => {
            let started = Instant::now();
            let from_disk = shared
                .persist
                .as_ref()
                .and_then(|p| p.load_prepared(fingerprint));
            match from_disk {
                Some(prepared) => {
                    // Decoded artifacts carry recompiled segment
                    // programs, so the disk warm path skips `prepare`
                    // just like the in-memory one.
                    if !prepared.programs.is_empty() {
                        shared.compiled_program_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    let prepared = Arc::new(prepared);
                    shared.compiles.insert(fingerprint, Arc::clone(&prepared));
                    (
                        prepared,
                        "compile-disk-hit",
                        started.elapsed().as_secs_f64(),
                    )
                }
                None => match solver.prepare(&problem) {
                    Ok(prepared) => {
                        let prepared = Arc::new(prepared);
                        shared.compiles.insert(fingerprint, Arc::clone(&prepared));
                        if let Some(persist) = &shared.persist {
                            // Flush failures only cost warmth, never
                            // correctness; the counters record them.
                            if persist.store_prepared(fingerprint, &prepared).is_err() {
                                shared.registry.counter_add("persist.write_error", 1);
                            }
                        }
                        (prepared, "miss", started.elapsed().as_secs_f64())
                    }
                    Err(err) => {
                        shared.served_error.fetch_add(1, Ordering::Relaxed);
                        return Reply::new(ReplyStatus::Error, error_sections(&err));
                    }
                },
            }
        }
    };

    match solver.solve_prepared(&problem, &prepared) {
        Ok(mut outcome) => {
            // Cache the outcome as solved — per-request queue wait and
            // hit flags are stamped on the copy each response sends.
            shared.results.insert(key, Arc::new(outcome.clone()));
            if let (Some(persist), Some(disk_key)) = (&shared.persist, &disk_key) {
                if persist.store_outcome(disk_key, &outcome).is_err() {
                    shared.registry.counter_add("persist.write_error", 1);
                }
            }
            outcome.latency.stages.queue_s = queue_s;
            outcome.latency.stages.prepare_s = prepare_s;
            ok_reply(shared, &outcome, fingerprint, queue_s, enqueued, cache_note)
        }
        Err(err) => {
            shared.served_error.fetch_add(1, Ordering::Relaxed);
            Reply::new(ReplyStatus::Error, error_sections(&err))
        }
    }
}

/// Builds the reply for a solve served through the fabric — a freshly
/// forwarded owner reply or a local read-through copy of one. This
/// node's own `service` section is stamped in front; every other
/// section (`result`, `timing`, `trace`, …) is the owner's bytes,
/// verbatim, so the `result` a client reads is identical no matter
/// which node it hit.
fn forwarded_reply(
    shared: &Shared,
    sections: Vec<(String, String)>,
    fingerprint: u128,
    queue_s: f64,
    enqueued: Instant,
    cache_note: &str,
    owner: Option<&str>,
) -> Reply {
    shared.served_ok.fetch_add(1, Ordering::Relaxed);
    shared.registry.counter_add("serve.requests", 1);
    shared
        .registry
        .histogram_record("serve.queue_wait_us", (queue_s * 1e6) as u64);
    shared.registry.histogram_record(
        "serve.request_us",
        enqueued.elapsed().as_micros().min(u64::MAX as u128) as u64,
    );
    let mut service = vec![
        ("fingerprint", Json::Str(format!("{fingerprint:#034x}"))),
        ("cache", Json::Str(cache_note.to_string())),
        ("queue_wait_ms", Json::Num(queue_s * 1000.0)),
    ];
    if let Some(owner) = owner {
        service.push(("owner", Json::Str(owner.to_string())));
    }
    let mut all = vec![("service".to_string(), Json::obj(service).render())];
    all.extend(sections);
    Reply {
        status: ReplyStatus::Ok,
        sections: all,
    }
}

fn ok_reply(
    shared: &Shared,
    outcome: &Outcome,
    fingerprint: u128,
    queue_s: f64,
    enqueued: Instant,
    cache_note: &str,
) -> Reply {
    shared.served_ok.fetch_add(1, Ordering::Relaxed);
    shared.registry.counter_add("serve.requests", 1);
    shared
        .registry
        .histogram_record("serve.queue_wait_us", (queue_s * 1e6) as u64);
    shared.registry.histogram_record(
        "serve.request_us",
        enqueued.elapsed().as_micros().min(u64::MAX as u128) as u64,
    );
    let service = Json::obj(vec![
        ("fingerprint", Json::Str(format!("{fingerprint:#034x}"))),
        ("cache", Json::Str(cache_note.to_string())),
        ("queue_wait_ms", Json::Num(queue_s * 1000.0)),
    ]);
    let mut sections = vec![
        ("service", service),
        ("result", outcome_json(outcome)),
        ("timing", timing_json(outcome)),
    ];
    // The span tree rides in its own section so `result` stays
    // byte-identical with and without tracing. Only the deterministic
    // render is sent: IDs and structure, no wall-clock. No reactor or
    // worker span is ever added here: the served trace must byte-match
    // an in-process solve's tree (the determinism suite checks this).
    if let Some(tree) = &outcome.trace {
        sections.push(("trace", tree.deterministic_json()));
    }
    Reply::new(ReplyStatus::Ok, sections)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;

    fn tiny_problem() -> &'static str {
        include_str!("../../../examples/instances/F1.problem")
    }

    #[test]
    fn verb_line_edge_cases() {
        // The accept loop trusts `parse_verb` for header parsing;
        // exercise the shapes a real socket produces: CRLF line
        // endings, leading/trailing whitespace, extra tokens.
        assert_eq!(parse_verb("RASENGAN/1 PING\r\n").unwrap(), Verb::Ping);
        assert_eq!(parse_verb("  RASENGAN/1   STATS  ").unwrap(), Verb::Stats);
        assert_eq!(parse_verb("RASENGAN/1 SOLVE extra").unwrap(), Verb::Solve);
        assert!(parse_verb("").is_err());
        assert!(parse_verb("\n").is_err());
        assert!(parse_verb("RASENGAN/2 SOLVE").is_err());
        assert!(parse_verb("RASENGAN/1").is_err());
        assert!(parse_verb("rasengan/1 solve").is_err());
    }

    #[test]
    fn result_key_separates_trace_from_untraced() {
        let request = SolveRequest::new(tiny_problem()).with_seed(9);
        let plain = ResultKey::new(1, &request, false);
        let traced = ResultKey::new(1, &request, true);
        assert_ne!(
            plain, traced,
            "a traced solve must not be served an untraced cache entry"
        );
        // The other knobs still distinguish keys as before.
        let reseeded = ResultKey::new(1, &request.clone().with_seed(10), false);
        assert_ne!(plain, reseeded);
        assert_eq!(plain, ResultKey::new(1, &request, false));
    }

    #[test]
    fn stats_reply_carries_registry_snapshot() {
        let server = serve(ServeConfig::default().with_workers(1)).expect("bind");
        let reply = {
            let mut stream = TcpStream::connect(server.addr()).unwrap();
            stream.write_all(b"RASENGAN/1 STATS\n").unwrap();
            let _ = stream.shutdown(std::net::Shutdown::Write);
            let mut body = String::new();
            stream.read_to_string(&mut body).unwrap();
            Reply::parse(&body).unwrap()
        };
        assert_eq!(reply.status, ReplyStatus::Ok);
        let stats = reply.json("stats").unwrap();
        let metrics = stats.get("metrics").expect("stats include metrics");
        for group in ["counters", "gauges", "histograms"] {
            assert!(metrics.get(group).is_some(), "missing `{group}` group");
        }
        server.shutdown();
    }

    #[test]
    fn stalled_client_gets_structured_timeout_error() {
        // A tight IO deadline: connect, send only the verb line, then
        // stall. The worker's body read must expire and answer with a
        // structured `timeout` error instead of pinning the thread.
        let server = serve(
            ServeConfig::default()
                .with_workers(1)
                .with_io_timeout(Duration::from_millis(100)),
        )
        .expect("bind");
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"RASENGAN/1 SOLVE\n").unwrap();
        // Do not shut down the write side: the server sees silence,
        // not EOF, until its read deadline fires.
        let mut body = String::new();
        stream.read_to_string(&mut body).unwrap();
        let reply = Reply::parse(&body).unwrap();
        assert_eq!(reply.status, ReplyStatus::Error, "{body:?}");
        let error = reply.json("error").unwrap();
        assert_eq!(
            error.get("kind").and_then(|k| k.as_str()),
            Some("timeout"),
            "{body:?}"
        );
        assert_eq!(server.stats().timeouts, 1);
        assert_eq!(server.stats().bad_requests, 0);
        server.shutdown();
    }

    #[test]
    fn warm_state_survives_server_restart() {
        let dir =
            std::env::temp_dir().join(format!("rasengan-serve-restart-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let request = SolveRequest::new(tiny_problem())
            .with_seed(3)
            .with_shots(128)
            .with_iterations(4);
        let submit = |addr: SocketAddr| {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(request.render().as_bytes()).unwrap();
            let _ = stream.shutdown(std::net::Shutdown::Write);
            let mut body = String::new();
            stream.read_to_string(&mut body).unwrap();
            Reply::parse(&body).unwrap()
        };
        // Cold server: the solve misses everything and flushes both an
        // outcome and a prepared artifact to disk.
        let first = serve(ServeConfig::default().with_state_dir(&dir)).expect("bind");
        let cold = submit(first.addr());
        assert_eq!(cold.status, ReplyStatus::Ok);
        let cold_result = cold.section("result").unwrap().to_string();
        assert_eq!(first.stats().persist.flushes, 2);
        first.shutdown();
        // Restarted server, same state dir: the recovery scan admits
        // both records and the replayed request is served from disk,
        // byte-identical, without a solve.
        let second = serve(ServeConfig::default().with_state_dir(&dir)).expect("bind");
        assert_eq!(second.stats().persist.recovered, 2);
        let warm = submit(second.addr());
        assert_eq!(warm.status, ReplyStatus::Ok);
        assert_eq!(
            warm.json("service")
                .unwrap()
                .get("cache")
                .and_then(|c| c.as_str()),
            Some("disk-hit")
        );
        assert_eq!(warm.section("result").unwrap(), cold_result);
        let stats = second.stats();
        assert_eq!(stats.persist.disk_hits, 1);
        assert_eq!(stats.persist.quarantined, 0);
        second.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn traced_requests_bypass_the_disk_tier() {
        let dir =
            std::env::temp_dir().join(format!("rasengan-serve-traced-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let server = serve(ServeConfig::default().with_state_dir(&dir)).expect("bind");
        let request = SolveRequest::new(tiny_problem())
            .with_shots(64)
            .with_iterations(2)
            .with_trace();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(request.render().as_bytes()).unwrap();
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let mut body = String::new();
        stream.read_to_string(&mut body).unwrap();
        let reply = Reply::parse(&body).unwrap();
        assert_eq!(reply.status, ReplyStatus::Ok);
        assert!(reply.section("trace").is_some());
        // The compile artifact is persisted (trace-independent), but
        // the traced outcome is not: its record could never carry the
        // span tree back.
        let stats = server.stats();
        assert_eq!(stats.persist.flushes, 1);
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_drains_queued_solves_before_joining() {
        // One worker, several admitted requests: write the requests,
        // call shutdown *before* reading any reply, then read. Every
        // admitted connection must still receive a complete response —
        // the drain happens during shutdown, in admission order.
        let server = serve(
            ServeConfig::default()
                .with_workers(1)
                .with_queue_capacity(8),
        )
        .expect("bind");
        let addr = server.addr();
        let request = SolveRequest::new(tiny_problem())
            .with_shots(64)
            .with_iterations(2);
        let streams: Vec<TcpStream> = (0..3)
            .map(|_| {
                let mut stream = TcpStream::connect(addr).unwrap();
                stream.write_all(request.render().as_bytes()).unwrap();
                let _ = stream.shutdown(std::net::Shutdown::Write);
                stream
            })
            .collect();
        // Wait for admission: accepted counts verb lines read, so all
        // three being accepted means they are queued (or already being
        // served) — none can be lost by the shutdown below.
        while server.stats().accepted < 3 {
            std::thread::sleep(Duration::from_millis(5));
        }
        server.shutdown();
        for (i, mut stream) in streams.into_iter().enumerate() {
            let mut body = String::new();
            stream.read_to_string(&mut body).unwrap();
            let reply =
                Reply::parse(&body).unwrap_or_else(|e| panic!("stream {i}: {e}; body {body:?}"));
            assert_eq!(reply.status, ReplyStatus::Ok, "stream {i}: {body:?}");
            assert!(reply.section("result").is_some());
        }
    }
}
