//! The epoll reactor: the event-driven replacement for the blocking
//! accept thread.
//!
//! One thread owns every socket. The listener, a wakeup eventfd, and
//! each connection are registered with a single epoll instance
//! ([`crate::sys`]); the loop waits, dispatches readiness to the
//! per-connection state machines ([`crate::conn`]), and never blocks
//! on any individual socket. Parsed `SOLVE` requests go to the same
//! worker pool as the threaded front end over the shared
//! `BoundedQueue`; workers compute a [`Reply`] and hand it back
//! through [`ReactorLink::complete`], which is a vec push plus an
//! eventfd write — solver threads never touch a socket.
//!
//! # Timer wheel
//!
//! `--io-timeout-ms` is enforced by a 256-slot, 10ms-tick timer wheel
//! instead of `SO_RCVTIMEO`/`SO_SNDTIMEO`. Each connection carries an
//! authoritative `deadline`, refreshed whenever bytes move in either
//! direction and cleared while a solve is in flight (a long solve is
//! not an IO stall). Wheel entries are hints: when one fires, the
//! connection's own deadline decides whether to time out or to re-arm
//! at the refreshed deadline — so progress never has to delete a wheel
//! entry, and stale entries for closed connections simply miss the
//! connection table. Timeout attribution matches the threaded front
//! end: a stall after the verb line is a `timeouts` increment plus a
//! structured `timeout` error reply; a connection that never produced
//! a verb counts as a bad request, like a failed verb-line read.
//!
//! # Shutdown
//!
//! [`ServerHandle::shutdown`](crate::server::ServerHandle::shutdown)
//! sets the stop flag and writes the eventfd. The reactor deregisters
//! the listener, keeps serving every live connection (reads still
//! parse, queued solves still complete, write buffers still drain),
//! and exits once the connection table is empty — at worst one IO
//! timeout after the last client stalls. Workers are joined after the
//! reactor, so in-flight solves always find the queue alive.

use std::collections::HashMap;
use std::net::TcpListener;
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::conn::{Conn, Phase, ReadOutcome, WriteOutcome};
use crate::json::Json;
use crate::protocol::{ParseProgress, Reply, ReplyStatus, RequestError, SolveRequest, Verb};
use crate::server::{bad_request_reply, busy_reply, request_error_reply, ParsedJob, Shared, Work};
use crate::sys::{Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};

/// Timer wheel granularity. Deadlines fire at most one tick late.
const TICK_MS: u64 = 10;
/// Wheel size; one lap covers `TICK_MS * WHEEL_SLOTS` = 2.56s, and
/// longer deadlines survive laps by re-insertion.
const WHEEL_SLOTS: u64 = 256;

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// The workers' channel back into the reactor: completed replies plus
/// the eventfd that interrupts `epoll_wait`.
pub(crate) struct ReactorLink {
    completions: Mutex<Vec<(u64, Reply)>>,
    wake: EventFd,
}

impl ReactorLink {
    pub(crate) fn new() -> std::io::Result<ReactorLink> {
        Ok(ReactorLink {
            completions: Mutex::new(Vec::new()),
            wake: EventFd::new()?,
        })
    }

    /// Queues a finished reply for `token` and wakes the reactor.
    pub(crate) fn complete(&self, token: u64, reply: Reply) {
        self.completions.lock().unwrap().push((token, reply));
        self.wake.wake();
    }

    /// Wakes the reactor without a completion (shutdown signal).
    pub(crate) fn notify(&self) {
        self.wake.wake();
    }

    fn take(&self) -> Vec<(u64, Reply)> {
        std::mem::take(&mut *self.completions.lock().unwrap())
    }
}

/// A deadline hint. `deadline_ms` is re-checked against the
/// connection's live deadline when the slot fires (lazy cancellation).
struct TimerEntry {
    token: u64,
    deadline_ms: u64,
}

struct TimerWheel {
    slots: Vec<Vec<TimerEntry>>,
    /// Wheel time already processed, in ms since reactor start
    /// (always a multiple of `TICK_MS`).
    processed_ms: u64,
    armed: usize,
}

impl TimerWheel {
    fn new() -> TimerWheel {
        TimerWheel {
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            processed_ms: 0,
            armed: 0,
        }
    }

    fn armed(&self) -> bool {
        self.armed > 0
    }

    /// Arms a deadline. The slot is the deadline's tick rounded *up*
    /// (so firing the slot implies the deadline has passed), clamped
    /// to the next unprocessed tick so past deadlines fire promptly
    /// instead of waiting a full lap.
    fn arm(&mut self, token: u64, deadline_ms: u64) {
        let tick = deadline_ms
            .div_ceil(TICK_MS)
            .max(self.processed_ms / TICK_MS + 1);
        self.slots[(tick % WHEEL_SLOTS) as usize].push(TimerEntry { token, deadline_ms });
        self.armed += 1;
    }

    /// Advances wheel time to `now_ms`, returning the tokens of every
    /// entry that came due. Entries a full lap (or more) in the future
    /// land back in their slot for the next pass.
    fn expire(&mut self, now_ms: u64) -> Vec<u64> {
        let mut due = Vec::new();
        while self.processed_ms + TICK_MS <= now_ms {
            self.processed_ms += TICK_MS;
            let slot = ((self.processed_ms / TICK_MS) % WHEEL_SLOTS) as usize;
            let entries = std::mem::take(&mut self.slots[slot]);
            for entry in entries {
                if entry.deadline_ms <= now_ms {
                    self.armed -= 1;
                    due.push(entry.token);
                } else {
                    self.slots[slot].push(entry);
                }
            }
        }
        due
    }
}

/// Creates the epoll instance, registers the listener and wakeup fd,
/// and spawns the reactor thread. Fails only on resource exhaustion
/// (fd limits), surfaced from [`crate::server::serve`] at startup.
pub(crate) fn spawn(
    listener: TcpListener,
    shared: Arc<Shared>,
    link: Arc<ReactorLink>,
) -> std::io::Result<JoinHandle<()>> {
    listener.set_nonblocking(true)?;
    let epoll = Epoll::new()?;
    epoll.add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
    epoll.add(link.wake.fd(), EPOLLIN, TOKEN_WAKE)?;
    let reactor = Reactor {
        epoll,
        listener,
        shared,
        link,
        conns: HashMap::new(),
        wheel: TimerWheel::new(),
        next_token: FIRST_CONN_TOKEN,
        start: Instant::now(),
        accepting: true,
    };
    std::thread::Builder::new()
        .name("rasengan-serve-reactor".to_string())
        .spawn(move || reactor.run())
}

struct Reactor {
    epoll: Epoll,
    listener: TcpListener,
    shared: Arc<Shared>,
    link: Arc<ReactorLink>,
    conns: HashMap<u64, Conn>,
    wheel: TimerWheel,
    next_token: u64,
    start: Instant,
    accepting: bool,
}

impl Reactor {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis().min(u64::MAX as u128) as u64
    }

    fn ms(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.start)
            .as_millis()
            .min(u64::MAX as u128) as u64
    }

    fn fresh_deadline(&self) -> Instant {
        Instant::now() + self.shared.config.io_timeout
    }

    fn run(mut self) {
        let mut events = vec![EpollEvent::default(); 256];
        let mut scratch = vec![0u8; 64 * 1024];
        loop {
            // With timers armed the wait is one wheel tick so expiry
            // stays prompt; otherwise block until a socket or the
            // eventfd has something (completions and shutdown both
            // write the eventfd, so -1 never oversleeps).
            let timeout = if self.wheel.armed() {
                TICK_MS as i32
            } else {
                -1
            };
            let fired = self.epoll.wait(&mut events, timeout).unwrap_or(0);
            self.shared.loop_iterations.fetch_add(1, Ordering::Relaxed);
            for event in &events[..fired] {
                let (mask, token) = event.parts();
                match token {
                    TOKEN_LISTENER => self.accept_burst(),
                    TOKEN_WAKE => self.link.wake.drain(),
                    token => self.conn_event(token, mask, &mut scratch),
                }
            }
            for (token, reply) in self.link.take() {
                self.deliver(token, reply);
            }
            let now_ms = self.now_ms();
            for token in self.wheel.expire(now_ms) {
                self.timer_fired(token, now_ms);
            }
            if self.shared.shutdown.load(Ordering::SeqCst) {
                if self.accepting {
                    self.accepting = false;
                    let _ = self.epoll.del(self.listener.as_raw_fd());
                }
                if self.conns.is_empty() {
                    break;
                }
            }
        }
    }

    /// Drains the accept backlog (level-triggered: stop at WouldBlock).
    fn accept_burst(&mut self) {
        while self.accepting {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    crate::server::apply_send_buffer(&self.shared.config, &stream);
                    self.shared.accepted.fetch_add(1, Ordering::Relaxed);
                    let token = self.next_token;
                    self.next_token += 1;
                    let mut conn = Conn::new(stream);
                    let deadline = self.fresh_deadline();
                    conn.deadline = Some(deadline);
                    let interest = EPOLLIN | EPOLLRDHUP;
                    if self
                        .epoll
                        .add(conn.stream.as_raw_fd(), interest, token)
                        .is_err()
                    {
                        // Out of epoll capacity; dropping the stream
                        // closes it.
                        continue;
                    }
                    conn.interest = Some(interest);
                    let deadline_ms = self.ms(deadline);
                    self.wheel.arm(token, deadline_ms);
                    self.conns.insert(token, conn);
                    self.shared.conns_open.fetch_add(1, Ordering::Relaxed);
                }
                Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(err) if err.kind() == std::io::ErrorKind::Interrupted => {}
                // Transient per-connection accept errors (ECONNABORTED
                // and friends): the backlog may still hold live
                // connections, but level-triggered epoll will re-report
                // it; don't spin here.
                Err(_) => break,
            }
        }
    }

    fn conn_event(&mut self, token: u64, mask: u32, scratch: &mut [u8]) {
        let phase = match self.conns.get(&token) {
            Some(conn) => conn.phase(),
            None => return,
        };
        match phase {
            Phase::Reading => {
                if mask & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0 {
                    self.shared.readable_events.fetch_add(1, Ordering::Relaxed);
                    self.drive_read(token, scratch);
                }
            }
            // The socket is deregistered while solving; a late event
            // already in this batch is ignored.
            Phase::Solving => {}
            Phase::Writing => {
                if mask & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0 {
                    self.drive_write(token);
                }
            }
        }
    }

    fn drive_read(&mut self, token: u64, scratch: &mut [u8]) {
        let fresh = self.fresh_deadline();
        let outcome = match self.conns.get_mut(&token) {
            Some(conn) => conn.handle_readable(scratch),
            None => return,
        };
        match outcome {
            ReadOutcome::NeedMore { progressed } => {
                if progressed {
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.deadline = Some(fresh);
                    }
                }
            }
            ReadOutcome::Parsed(progress) => self.request_ready(token, progress),
            ReadOutcome::Invalid(err) => {
                let counter = match err {
                    RequestError::Timeout(_) => &self.shared.timeouts,
                    RequestError::Malformed(_) => &self.shared.bad_requests,
                };
                counter.fetch_add(1, Ordering::Relaxed);
                self.start_write(token, &request_error_reply(&err));
            }
            // Transport failure mid-request: the threaded front end
            // counts a failed read as a bad request; match it.
            ReadOutcome::Peer => {
                self.shared.bad_requests.fetch_add(1, Ordering::Relaxed);
                self.close(token);
            }
        }
    }

    fn request_ready(&mut self, token: u64, progress: ParseProgress) {
        match progress {
            ParseProgress::More => {}
            ParseProgress::Verb(Verb::Ping) => {
                let reply = Reply::new(ReplyStatus::Ok, vec![("pong", Json::obj(vec![]))]);
                self.start_write(token, &reply);
            }
            ParseProgress::Verb(Verb::Stats) => {
                let reply = Reply::new(ReplyStatus::Ok, vec![("stats", self.shared.stats_json())]);
                self.start_write(token, &reply);
            }
            // `SOLVE`/`GOSSIP` never surface as bare verbs — the
            // parser rolls on into their bodies — but the arms must
            // exist; treat them as requests that ended early, like the
            // blocking reader would.
            ParseProgress::Verb(Verb::Solve) => {
                self.shared.bad_requests.fetch_add(1, Ordering::Relaxed);
                self.start_write(
                    token,
                    &bad_request_reply("request ended before BEGIN PROBLEM"),
                );
            }
            ParseProgress::Verb(Verb::Gossip) => {
                self.shared.bad_requests.fetch_add(1, Ordering::Relaxed);
                self.start_write(token, &bad_request_reply("gossip ended before END GOSSIP"));
            }
            // Membership exchanges are answered inline like STATS, so
            // a node whose solve queue is saturated still heartbeats.
            ParseProgress::Gossip(message) => {
                let reply = crate::server::gossip_reply(&self.shared, &message);
                self.start_write(token, &reply);
            }
            ParseProgress::Request(request) => self.submit(token, request),
        }
    }

    /// Hands a parsed request to the worker pool, or sheds it with the
    /// same structured `BUSY` reply the threaded front end sends.
    fn submit(&mut self, token: u64, request: Box<SolveRequest>) {
        let work = Work::Parsed(ParsedJob {
            token,
            request,
            enqueued: Instant::now(),
        });
        match self.shared.queue.try_push(work) {
            Ok(()) => {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                conn.solving();
                // Nothing the client sends can advance a solving
                // request, so drop the socket from epoll entirely; the
                // completion re-registers it for writing. The deadline
                // is cleared too: a long solve is not an IO stall.
                let _ = self.epoll.del(conn.stream.as_raw_fd());
                conn.interest = None;
            }
            Err(_) => {
                self.shared.shed.fetch_add(1, Ordering::Relaxed);
                self.start_write(token, &busy_reply(&self.shared));
            }
        }
    }

    /// Routes a worker's finished reply back onto the wire.
    fn deliver(&mut self, token: u64, reply: Reply) {
        if self.conns.contains_key(&token) {
            self.start_write(token, &reply);
        }
    }

    fn start_write(&mut self, token: u64, reply: &Reply) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.begin_reply(reply);
        self.drive_write(token);
    }

    fn drive_write(&mut self, token: u64) {
        let fresh = self.fresh_deadline();
        let outcome = match self.conns.get_mut(&token) {
            Some(conn) => conn.handle_writable(),
            None => return,
        };
        match outcome {
            WriteOutcome::Done => self.close(token),
            WriteOutcome::Blocked { progressed } => {
                self.shared.writable_stalls.fetch_add(1, Ordering::Relaxed);
                let (fd, interest, deadline) = {
                    let Some(conn) = self.conns.get_mut(&token) else {
                        return;
                    };
                    if progressed || conn.deadline.is_none() {
                        conn.deadline = Some(fresh);
                    }
                    (
                        conn.stream.as_raw_fd(),
                        conn.interest,
                        conn.deadline.expect("write phase has a deadline"),
                    )
                };
                if interest != Some(EPOLLOUT) {
                    let registered = match interest {
                        Some(_) => self.epoll.modify(fd, EPOLLOUT, token),
                        None => self.epoll.add(fd, EPOLLOUT, token),
                    };
                    if registered.is_err() {
                        self.close(token);
                        return;
                    }
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.interest = Some(EPOLLOUT);
                    }
                    // One wheel entry per write phase; deadline
                    // refreshes are picked up lazily when it fires.
                    let deadline_ms = self.ms(deadline);
                    self.wheel.arm(token, deadline_ms);
                }
            }
            WriteOutcome::Peer => self.close(token),
        }
    }

    /// Enforces a fired deadline, or re-arms if the connection made
    /// progress since the entry was inserted.
    fn timer_fired(&mut self, token: u64, now_ms: u64) {
        let (phase, verb_seen, deadline_ms) = {
            let Some(conn) = self.conns.get(&token) else {
                return;
            };
            let Some(deadline) = conn.deadline else {
                return;
            };
            (conn.phase(), conn.verb_seen(), self.ms(deadline))
        };
        if deadline_ms > now_ms {
            self.wheel.arm(token, deadline_ms);
            return;
        }
        match phase {
            Phase::Reading if verb_seen => {
                // Same attribution and bytes as the blocking path's
                // expired body read.
                self.shared.timeouts.fetch_add(1, Ordering::Relaxed);
                let err = RequestError::Timeout("connection idle past the io timeout".to_string());
                self.start_write(token, &request_error_reply(&err));
            }
            Phase::Reading => {
                // No verb ever arrived: the threaded front end's
                // verb-line read would have failed — a bad request,
                // closed without a reply.
                self.shared.bad_requests.fetch_add(1, Ordering::Relaxed);
                self.close(token);
            }
            Phase::Solving => {}
            Phase::Writing => {
                // The client stopped draining its response.
                self.shared.timeouts.fetch_add(1, Ordering::Relaxed);
                self.close(token);
            }
        }
    }

    fn close(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            if conn.interest.is_some() {
                let _ = self.epoll.del(conn.stream.as_raw_fd());
            }
            self.shared.conns_open.fetch_sub(1, Ordering::Relaxed);
            // Dropping the stream closes the fd.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wheel_fires_on_time_and_respects_laziness() {
        let mut wheel = TimerWheel::new();
        wheel.arm(7, 25);
        assert!(wheel.armed());
        // Nothing due before the deadline's tick.
        assert!(wheel.expire(20).is_empty());
        // The rounded-up tick (30ms) fires it.
        assert_eq!(wheel.expire(31), vec![7]);
        assert!(!wheel.armed());
    }

    #[test]
    fn wheel_survives_full_laps() {
        let mut wheel = TimerWheel::new();
        // A deadline more than one lap (2560ms) out must not fire on
        // the first pass over its slot.
        wheel.arm(3, TICK_MS * WHEEL_SLOTS + 45);
        assert!(wheel.expire(1000).is_empty());
        assert!(wheel.expire(2560).is_empty());
        assert_eq!(wheel.expire(TICK_MS * WHEEL_SLOTS + 50), vec![3]);
    }

    #[test]
    fn wheel_clamps_past_deadlines_to_next_tick() {
        let mut wheel = TimerWheel::new();
        assert!(wheel.expire(500).is_empty());
        // Arming a deadline that already passed fires on the next
        // tick, not a lap later.
        wheel.arm(9, 100);
        assert_eq!(wheel.expire(510), vec![9]);
    }
}
