//! Blocking client for the solve service: one connection per request,
//! read to EOF, parse the sectioned reply.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{Reply, SolveRequest, PROTOCOL};

/// Default client-side socket timeout. Solves can legitimately take a
/// while; this only bounds a dead server, not a slow one answering
/// keep-nothing — the server writes in one burst when done.
const DEFAULT_TIMEOUT: Duration = Duration::from_secs(120);

fn roundtrip(addr: impl ToSocketAddrs, request_text: &str) -> std::io::Result<Reply> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(DEFAULT_TIMEOUT))?;
    stream.set_write_timeout(Some(DEFAULT_TIMEOUT))?;
    stream.write_all(request_text.as_bytes())?;
    stream.flush()?;
    // Signal end-of-request; the server replies and closes, so the
    // response is simply everything until EOF.
    let _ = stream.shutdown(Shutdown::Write);
    let mut body = String::new();
    stream.read_to_string(&mut body)?;
    parse_response(&body)
}

/// Parses a raw response body, mapping protocol-level failures onto
/// [`std::io::ErrorKind::InvalidData`] so callers see one error type
/// for both transport and framing problems.
fn parse_response(body: &str) -> std::io::Result<Reply> {
    Reply::parse(body)
        .map_err(|message| std::io::Error::new(std::io::ErrorKind::InvalidData, message))
}

/// Submits a solve request and returns the parsed reply (which may be
/// `Busy` or `Error` — inspect [`Reply::status`]).
///
/// # Errors
///
/// I/O errors talking to the server, or an unparseable response.
pub fn submit(addr: impl ToSocketAddrs, request: &SolveRequest) -> std::io::Result<Reply> {
    roundtrip(addr, &request.render())
}

/// Fetches the service counters (`STATS` verb).
///
/// # Errors
///
/// I/O errors talking to the server, or an unparseable response.
pub fn stats(addr: impl ToSocketAddrs) -> std::io::Result<Reply> {
    roundtrip(addr, &format!("{PROTOCOL} STATS\n"))
}

/// Liveness check (`PING` verb).
///
/// # Errors
///
/// I/O errors talking to the server, or an unparseable response.
pub fn ping(addr: impl ToSocketAddrs) -> std::io::Result<Reply> {
    roundtrip(addr, &format!("{PROTOCOL} PING\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ReplyStatus;

    #[test]
    fn response_sections_split_on_first_space_only() {
        // Section bodies are JSON and JSON contains spaces inside
        // strings; only the first space separates name from body.
        let body = concat!(
            "RASENGAN/1 OK\n",
            "service {\"cache\":\"miss\",\"note\":\"a b c\"}\n",
            "result {\"best\":{\"bits\":[0,1]}}\n",
            "trace {\"label\":\"solve\"}\n",
        );
        let reply = parse_response(body).unwrap();
        assert_eq!(reply.status, ReplyStatus::Ok);
        assert_eq!(
            reply
                .sections
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            vec!["service", "result", "trace"]
        );
        assert_eq!(
            reply.section("service"),
            Some("{\"cache\":\"miss\",\"note\":\"a b c\"}")
        );
        assert_eq!(
            reply
                .json("trace")
                .unwrap()
                .get("label")
                .and_then(|v| v.as_str()),
            Some("solve")
        );
    }

    #[test]
    fn framing_failures_map_to_invalid_data() {
        for bad in ["", "HTTP/1.1 200 OK\n", "RASENGAN/1 MAYBE\n", "garbage"] {
            let err = parse_response(bad).unwrap_err();
            assert_eq!(
                err.kind(),
                std::io::ErrorKind::InvalidData,
                "body {bad:?} should map to InvalidData, got {err}"
            );
        }
        // Status parses but a section line has no space: still a
        // framing error, same mapping.
        let err = parse_response("RASENGAN/1 OK\nnospace\n").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn busy_and_error_statuses_are_data_not_errors() {
        // A well-formed BUSY/ERROR reply is a successful parse; the
        // caller inspects `status` — transport errors stay `Err`.
        let busy = parse_response("RASENGAN/1 BUSY\nservice {\"queue_depth\":8}\n").unwrap();
        assert_eq!(busy.status, ReplyStatus::Busy);
        let error =
            parse_response("RASENGAN/1 ERROR\nerror {\"kind\":\"basis\",\"message\":\"m\"}\n")
                .unwrap();
        assert_eq!(error.status, ReplyStatus::Error);
        assert_eq!(
            error
                .json("error")
                .unwrap()
                .get("kind")
                .and_then(|v| v.as_str()),
            Some("basis")
        );
    }
}
