//! Blocking client for the solve service: one connection per request,
//! read to EOF, parse the sectioned reply.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{Reply, SolveRequest, PROTOCOL};

/// Default client-side socket timeout. Solves can legitimately take a
/// while; this only bounds a dead server, not a slow one answering
/// keep-nothing — the server writes in one burst when done.
const DEFAULT_TIMEOUT: Duration = Duration::from_secs(120);

fn roundtrip(addr: impl ToSocketAddrs, request_text: &str) -> std::io::Result<Reply> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(DEFAULT_TIMEOUT))?;
    stream.set_write_timeout(Some(DEFAULT_TIMEOUT))?;
    stream.write_all(request_text.as_bytes())?;
    stream.flush()?;
    // Signal end-of-request; the server replies and closes, so the
    // response is simply everything until EOF.
    let _ = stream.shutdown(Shutdown::Write);
    let mut body = String::new();
    stream.read_to_string(&mut body)?;
    Reply::parse(&body)
        .map_err(|message| std::io::Error::new(std::io::ErrorKind::InvalidData, message))
}

/// Submits a solve request and returns the parsed reply (which may be
/// `Busy` or `Error` — inspect [`Reply::status`]).
///
/// # Errors
///
/// I/O errors talking to the server, or an unparseable response.
pub fn submit(addr: impl ToSocketAddrs, request: &SolveRequest) -> std::io::Result<Reply> {
    roundtrip(addr, &request.render())
}

/// Fetches the service counters (`STATS` verb).
///
/// # Errors
///
/// I/O errors talking to the server, or an unparseable response.
pub fn stats(addr: impl ToSocketAddrs) -> std::io::Result<Reply> {
    roundtrip(addr, &format!("{PROTOCOL} STATS\n"))
}

/// Liveness check (`PING` verb).
///
/// # Errors
///
/// I/O errors talking to the server, or an unparseable response.
pub fn ping(addr: impl ToSocketAddrs) -> std::io::Result<Reply> {
    roundtrip(addr, &format!("{PROTOCOL} PING\n"))
}
