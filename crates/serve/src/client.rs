//! Blocking client for the solve service: one connection per request,
//! read to EOF, parse the sectioned reply.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{Reply, SolveRequest, PROTOCOL};

/// Default client-side socket timeout. Solves can legitimately take a
/// while; this only bounds a dead server, not a slow one answering
/// keep-nothing — the server writes in one burst when done.
const DEFAULT_TIMEOUT: Duration = Duration::from_secs(120);

/// Bounded exponential backoff for transient connection failures —
/// the client half of warm restarts: a server being bounced refuses
/// connections for a moment, and a retrying client rides through and
/// observes the restart-to-warm transition end-to-end.
///
/// Only connection-level failures are retried: refused, reset, and
/// aborted (a server bouncing), plus the timed-out and unreachable
/// kinds a dead or partitioned peer produces — a fabric node that
/// just went dark looks like `TimedOut`/`HostUnreachable`, not
/// `ConnectionRefused`. These all mean no connection was usefully
/// established, so replaying is safe. Anything after a connection is
/// established — a malformed reply, a server-side error, a read
/// timeout surfacing as `WouldBlock` — is returned immediately: the
/// request may have been acted on, and replaying it is the caller's
/// decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total connection attempts (1 = no retries).
    pub attempts: u32,
    /// Delay before the first retry; doubles per retry.
    pub base_delay: Duration,
    /// Ceiling on the per-retry delay.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 1,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// A policy making `attempts` total attempts with the default
    /// backoff (50 ms doubling, capped at 2 s).
    pub fn attempts(attempts: u32) -> Self {
        RetryPolicy {
            attempts: attempts.max(1),
            ..RetryPolicy::default()
        }
    }

    /// The delay before retry number `retry` (0-based): base delay
    /// doubled per retry, saturating at the cap.
    fn delay(&self, retry: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(2u32.saturating_pow(retry.min(20)));
        exp.min(self.max_delay)
    }

    fn should_retry(err: &std::io::Error) -> bool {
        matches!(
            err.kind(),
            std::io::ErrorKind::ConnectionRefused
                | std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::ConnectionAborted
                // A dead or partitioned peer: the connect attempt
                // timed out or routing reported the host/network
                // unreachable. (An expired *read* deadline on an
                // established Unix socket surfaces as `WouldBlock`,
                // which stays non-retryable.)
                | std::io::ErrorKind::TimedOut
                | std::io::ErrorKind::HostUnreachable
                | std::io::ErrorKind::NetworkUnreachable
        )
    }
}

fn roundtrip(addr: impl ToSocketAddrs, request_text: &str) -> std::io::Result<Reply> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(DEFAULT_TIMEOUT))?;
    stream.set_write_timeout(Some(DEFAULT_TIMEOUT))?;
    stream.write_all(request_text.as_bytes())?;
    stream.flush()?;
    // Signal end-of-request; the server replies and closes, so the
    // response is simply everything until EOF.
    let _ = stream.shutdown(Shutdown::Write);
    let mut body = String::new();
    stream.read_to_string(&mut body)?;
    parse_response(&body)
}

/// Parses a raw response body, mapping protocol-level failures onto
/// [`std::io::ErrorKind::InvalidData`] so callers see one error type
/// for both transport and framing problems.
fn parse_response(body: &str) -> std::io::Result<Reply> {
    Reply::parse(body)
        .map_err(|message| std::io::Error::new(std::io::ErrorKind::InvalidData, message))
}

/// Submits a solve request and returns the parsed reply (which may be
/// `Busy` or `Error` — inspect [`Reply::status`]).
///
/// # Errors
///
/// I/O errors talking to the server, or an unparseable response.
pub fn submit(addr: impl ToSocketAddrs, request: &SolveRequest) -> std::io::Result<Reply> {
    roundtrip(addr, &request.render())
}

/// [`submit`] with bounded exponential backoff on connection-refused,
/// -reset, and -aborted — for riding through a server restart.
///
/// # Errors
///
/// The final attempt's error once the policy is exhausted, or
/// immediately for any non-connection failure.
pub fn submit_with_retry(
    addr: impl ToSocketAddrs + Copy,
    request: &SolveRequest,
    policy: RetryPolicy,
) -> std::io::Result<Reply> {
    let text = request.render();
    let mut retry = 0u32;
    loop {
        match roundtrip(addr, &text) {
            Ok(reply) => return Ok(reply),
            Err(err) if retry + 1 < policy.attempts.max(1) && RetryPolicy::should_retry(&err) => {
                std::thread::sleep(policy.delay(retry));
                retry += 1;
            }
            Err(err) => return Err(err),
        }
    }
}

/// [`submit`], but dribbling the request onto the wire `chunk` bytes
/// at a time with a `pace` sleep between writes — a cooperative
/// slowloris. On the threaded front end each such client pins a worker
/// for the whole trickle; the reactor just keeps a parser buffering.
///
/// # Errors
///
/// I/O errors talking to the server, or an unparseable response.
pub fn submit_trickled(
    addr: impl ToSocketAddrs,
    request: &SolveRequest,
    chunk: usize,
    pace: Duration,
) -> std::io::Result<Reply> {
    let text = request.render();
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(DEFAULT_TIMEOUT))?;
    stream.set_write_timeout(Some(DEFAULT_TIMEOUT))?;
    for piece in text.as_bytes().chunks(chunk.max(1)) {
        stream.write_all(piece)?;
        stream.flush()?;
        std::thread::sleep(pace);
    }
    let _ = stream.shutdown(Shutdown::Write);
    let mut body = String::new();
    stream.read_to_string(&mut body)?;
    parse_response(&body)
}

/// A connection held deliberately mid-request: opened, fed a prefix of
/// a request, then parked. What it costs the server is the point — a
/// pinned worker thread on the legacy front end versus one idle
/// reactor connection — so the loadgen concurrency arm and the
/// adversarial tests park many of these while measuring a fast stream.
pub struct HeldConnection {
    stream: TcpStream,
}

impl HeldConnection {
    /// Connects and sends `prefix` (possibly empty), leaving the
    /// connection open and the request unfinished.
    ///
    /// # Errors
    ///
    /// Connection or write failures.
    pub fn open(addr: impl ToSocketAddrs, prefix: &[u8]) -> std::io::Result<HeldConnection> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(DEFAULT_TIMEOUT))?;
        stream.set_write_timeout(Some(DEFAULT_TIMEOUT))?;
        if !prefix.is_empty() {
            stream.write_all(prefix)?;
            stream.flush()?;
        }
        Ok(HeldConnection { stream })
    }

    /// Sends more request bytes without completing it.
    ///
    /// # Errors
    ///
    /// Write failures (e.g. the server timed the connection out).
    pub fn send(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Bounds how long [`finish`](HeldConnection::finish) may block on
    /// socket reads/writes — held connections are often dead or stuck
    /// behind a saturated server, and callers finishing hundreds of
    /// them need each one to fail fast rather than hang for the
    /// default two minutes.
    ///
    /// # Errors
    ///
    /// Fails only on a zero duration.
    pub fn set_io_timeout(&mut self, timeout: Duration) -> std::io::Result<()> {
        self.stream.set_read_timeout(Some(timeout))?;
        self.stream.set_write_timeout(Some(timeout))
    }

    /// Sends the remainder of the request and reads the reply.
    ///
    /// # Errors
    ///
    /// I/O errors talking to the server, or an unparseable response.
    pub fn finish(mut self, rest: &[u8]) -> std::io::Result<Reply> {
        if !rest.is_empty() {
            self.stream.write_all(rest)?;
            self.stream.flush()?;
        }
        let _ = self.stream.shutdown(Shutdown::Write);
        let mut body = String::new();
        self.stream.read_to_string(&mut body)?;
        parse_response(&body)
    }
}

/// Fetches the service counters (`STATS` verb).
///
/// # Errors
///
/// I/O errors talking to the server, or an unparseable response.
pub fn stats(addr: impl ToSocketAddrs) -> std::io::Result<Reply> {
    roundtrip(addr, &format!("{PROTOCOL} STATS\n"))
}

/// Liveness check (`PING` verb).
///
/// # Errors
///
/// I/O errors talking to the server, or an unparseable response.
pub fn ping(addr: impl ToSocketAddrs) -> std::io::Result<Reply> {
    roundtrip(addr, &format!("{PROTOCOL} PING\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ReplyStatus;

    #[test]
    fn response_sections_split_on_first_space_only() {
        // Section bodies are JSON and JSON contains spaces inside
        // strings; only the first space separates name from body.
        let body = concat!(
            "RASENGAN/1 OK\n",
            "service {\"cache\":\"miss\",\"note\":\"a b c\"}\n",
            "result {\"best\":{\"bits\":[0,1]}}\n",
            "trace {\"label\":\"solve\"}\n",
        );
        let reply = parse_response(body).unwrap();
        assert_eq!(reply.status, ReplyStatus::Ok);
        assert_eq!(
            reply
                .sections
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            vec!["service", "result", "trace"]
        );
        assert_eq!(
            reply.section("service"),
            Some("{\"cache\":\"miss\",\"note\":\"a b c\"}")
        );
        assert_eq!(
            reply
                .json("trace")
                .unwrap()
                .get("label")
                .and_then(|v| v.as_str()),
            Some("solve")
        );
    }

    #[test]
    fn framing_failures_map_to_invalid_data() {
        for bad in ["", "HTTP/1.1 200 OK\n", "RASENGAN/1 MAYBE\n", "garbage"] {
            let err = parse_response(bad).unwrap_err();
            assert_eq!(
                err.kind(),
                std::io::ErrorKind::InvalidData,
                "body {bad:?} should map to InvalidData, got {err}"
            );
        }
        // Status parses but a section line has no space: still a
        // framing error, same mapping.
        let err = parse_response("RASENGAN/1 OK\nnospace\n").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn retry_backoff_is_bounded_and_doubling() {
        let policy = RetryPolicy {
            attempts: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(45),
        };
        assert_eq!(policy.delay(0), Duration::from_millis(10));
        assert_eq!(policy.delay(1), Duration::from_millis(20));
        assert_eq!(policy.delay(2), Duration::from_millis(40));
        // …then the cap holds forever, including absurd retry counts.
        assert_eq!(policy.delay(3), Duration::from_millis(45));
        assert_eq!(policy.delay(1000), Duration::from_millis(45));
    }

    #[test]
    fn retryable_error_classes_cover_dead_peers() {
        // Server-bounce classes: refused (nothing listening yet),
        // reset and aborted (listener went away mid-handshake).
        for kind in [
            std::io::ErrorKind::ConnectionRefused,
            std::io::ErrorKind::ConnectionReset,
            std::io::ErrorKind::ConnectionAborted,
        ] {
            assert!(
                RetryPolicy::should_retry(&std::io::Error::from(kind)),
                "{kind:?} must be retryable"
            );
        }
        // Dead-peer classes: a host that stopped answering makes the
        // connect attempt time out; a partition makes routing report
        // the host or network unreachable.
        for kind in [
            std::io::ErrorKind::TimedOut,
            std::io::ErrorKind::HostUnreachable,
            std::io::ErrorKind::NetworkUnreachable,
        ] {
            assert!(
                RetryPolicy::should_retry(&std::io::Error::from(kind)),
                "{kind:?} must be retryable (dead peer)"
            );
        }
        // Post-connection failures stay non-retryable: the request may
        // already have been acted on.
        for kind in [
            std::io::ErrorKind::InvalidData,
            std::io::ErrorKind::WouldBlock,
            std::io::ErrorKind::BrokenPipe,
            std::io::ErrorKind::UnexpectedEof,
        ] {
            assert!(
                !RetryPolicy::should_retry(&std::io::Error::from(kind)),
                "{kind:?} must not be retryable"
            );
        }
    }

    #[test]
    fn exhausted_retries_return_the_connection_error() {
        // A port with nothing listening: bind, read the address, drop.
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let policy = RetryPolicy {
            attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
        };
        let request = SolveRequest::new("vars 1\n");
        let err = submit_with_retry(addr, &request, policy).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused);
    }

    #[test]
    fn retries_ride_through_a_server_coming_up() {
        use crate::server::{serve, ServeConfig};
        // Reserve an ephemeral port, release it, and bring the server
        // up on it only after a delay — the first client attempts are
        // refused and the backoff carries the request through.
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let server = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(120));
            serve(ServeConfig::default().with_addr(addr.to_string())).expect("late bind")
        });
        let request = SolveRequest::new(include_str!("../../../examples/instances/F1.problem"))
            .with_shots(64)
            .with_iterations(2);
        let policy = RetryPolicy {
            attempts: 40,
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_millis(100),
        };
        let reply = submit_with_retry(addr, &request, policy).expect("retries ride through");
        assert_eq!(reply.status, ReplyStatus::Ok);
        server.join().unwrap().shutdown();
    }

    #[test]
    fn busy_and_error_statuses_are_data_not_errors() {
        // A well-formed BUSY/ERROR reply is a successful parse; the
        // caller inspects `status` — transport errors stay `Err`.
        let busy = parse_response("RASENGAN/1 BUSY\nservice {\"queue_depth\":8}\n").unwrap();
        assert_eq!(busy.status, ReplyStatus::Busy);
        let error =
            parse_response("RASENGAN/1 ERROR\nerror {\"kind\":\"basis\",\"message\":\"m\"}\n")
                .unwrap();
        assert_eq!(error.status, ReplyStatus::Error);
        assert_eq!(
            error
                .json("error")
                .unwrap()
                .get("kind")
                .and_then(|v| v.as_str()),
            Some("basis")
        );
    }
}
