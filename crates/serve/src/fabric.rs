//! The multi-node solve fabric: consistent-hash routing, single-hop
//! forwarding, and gossip membership.
//!
//! # Ring
//!
//! Ownership of a problem is a pure function of its
//! [`fingerprint`](rasengan_problems::fingerprint) and the live member
//! set: each member contributes [`DEFAULT_VNODES`] points on a 64-bit
//! FNV-1a ring (the same FNV constants as the cache shard selector),
//! and a fingerprint belongs to the first point clockwise from its own
//! hash. Every node that agrees on the member set agrees on every
//! owner — no coordinator, no handoff protocol.
//!
//! # Forwarding
//!
//! A `SOLVE` landing on a non-owner checks its local caches first,
//! then forwards the request to the owner over the ordinary line
//! protocol with a `via <node-id>` header. A request carrying `via` is
//! never forwarded again, so routing is bounded to one hop even while
//! two nodes briefly disagree about the ring. The owner serves from
//! its caches or computes and populates them; the forwarder returns
//! the owner's `result`/`timing`/`trace` sections byte-for-byte
//! (identity is the contract: any entry node yields the same bytes)
//! and optionally keeps a local read-through copy. If the owner is
//! unreachable the forwarder falls back to computing locally — the
//! solve is deterministic, so the bytes are identical either way, only
//! the cache warmth differs.
//!
//! # Membership
//!
//! A std-only seeded push-pull gossip: every heartbeat interval each
//! node exchanges its member table with its non-dead peers (`GOSSIP`
//! verb), in an order rotated by a seeded SplitMix64 step so the
//! traffic pattern is reproducible. A member quiet past the suspect
//! timeout becomes *suspect* (still in the ring); quiet past the dead
//! timeout it becomes *dead* and leaves the ring, bumping the ring
//! version. Only direct contact revives a member. Peer lists are
//! deduped and self-entries dropped, so `--peers` listing the node
//! itself (or the same peer twice) is harmless.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::protocol::{GossipMember, GossipMessage, GossipState, Reply, ReplyStatus};

/// Virtual nodes per member. More points smooth the key distribution;
/// 64 keeps an 8-node ring's max/min share ratio small while the
/// build stays trivially cheap.
pub const DEFAULT_VNODES: usize = 64;

/// FNV-1a 64-bit — the same constants as the cache shard selector, so
/// ring placement is stable across builds and platforms.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The ring position of a member's virtual node.
fn ring_point(id: &str, vnode: u32) -> u64 {
    let mut bytes = Vec::with_capacity(id.len() + 5);
    bytes.extend_from_slice(id.as_bytes());
    bytes.push(b'#');
    bytes.extend_from_slice(&vnode.to_le_bytes());
    fnv1a(&bytes)
}

/// The ring position of a problem fingerprint.
pub fn key_point(fingerprint: u128) -> u64 {
    fnv1a(&fingerprint.to_le_bytes())
}

/// A consistent-hash ring over a member set. Building it sorts and
/// dedupes members by id, so any two nodes holding the same live set
/// build byte-identical rings regardless of discovery order.
#[derive(Clone, Debug)]
pub struct Ring {
    /// `(point, member index)`, sorted by point.
    points: Vec<(u64, usize)>,
    /// `(id, addr)`, sorted by id, deduped.
    members: Vec<(String, String)>,
}

impl Ring {
    /// Builds the ring from `(id, addr)` members with `vnodes` virtual
    /// nodes each. Duplicate ids keep their first address.
    pub fn build(members: &[(String, String)], vnodes: usize) -> Ring {
        let mut sorted: Vec<(String, String)> = members.to_vec();
        sorted.sort();
        sorted.dedup_by(|a, b| a.0 == b.0);
        let mut points = Vec::with_capacity(sorted.len() * vnodes);
        for (index, (id, _)) in sorted.iter().enumerate() {
            for vnode in 0..vnodes.max(1) as u32 {
                points.push((ring_point(id, vnode), index));
            }
        }
        points.sort();
        Ring {
            points,
            members: sorted,
        }
    }

    /// The members on the ring, sorted by id.
    pub fn members(&self) -> &[(String, String)] {
        &self.members
    }

    /// The `(id, addr)` owning a fingerprint: the first ring point at
    /// or after the key's own point, wrapping at the top. `None` only
    /// for an empty ring.
    pub fn owner_of(&self, fingerprint: u128) -> Option<(&str, &str)> {
        if self.points.is_empty() {
            return None;
        }
        let point = key_point(fingerprint);
        let index = match self.points.binary_search(&(point, 0)) {
            Ok(i) => i,
            Err(i) if i == self.points.len() => 0,
            Err(i) => i,
        };
        let (_, member) = self.points[index];
        let (id, addr) = &self.members[member];
        Some((id, addr))
    }
}

/// Fabric tuning knobs, carried inside
/// [`ServeConfig`](crate::server::ServeConfig).
#[derive(Clone, Debug)]
pub struct FabricConfig {
    /// This node's stable id (no whitespace); ring placement hashes it.
    pub node_id: String,
    /// Seed peer addresses (`host:port`). Self-entries and duplicates
    /// are dropped.
    pub peers: Vec<String>,
    /// Address peers should dial to reach this node. `None` uses the
    /// bound address — required with port 0, where the real port is
    /// only known after bind.
    pub advertise: Option<String>,
    /// Seed for the deterministic gossip target rotation.
    pub seed: u64,
    /// Virtual nodes per member on the ring.
    pub vnodes: usize,
    /// Gossip round interval.
    pub heartbeat: Duration,
    /// Quiet time before a member turns suspect.
    pub suspect_after: Duration,
    /// Quiet time before a member turns dead and leaves the ring.
    pub dead_after: Duration,
    /// Socket timeout for forwarded solves (connect, read, write).
    pub forward_timeout: Duration,
    /// Keep a local read-through copy of forwarded results.
    pub read_through: bool,
}

impl FabricConfig {
    /// A config for the named node with default timings: 250 ms
    /// heartbeat, 1 s suspect, 3 s dead.
    pub fn new(node_id: impl Into<String>) -> FabricConfig {
        FabricConfig {
            node_id: node_id.into(),
            peers: Vec::new(),
            advertise: None,
            seed: 0,
            vnodes: DEFAULT_VNODES,
            heartbeat: Duration::from_millis(250),
            suspect_after: Duration::from_secs(1),
            dead_after: Duration::from_secs(3),
            forward_timeout: Duration::from_secs(120),
            read_through: true,
        }
    }

    /// Sets the seed peer list.
    pub fn with_peers(mut self, peers: Vec<String>) -> Self {
        self.peers = peers;
        self
    }

    /// Sets the advertised address.
    pub fn with_advertise(mut self, addr: impl Into<String>) -> Self {
        self.advertise = Some(addr.into());
        self
    }

    /// Sets the gossip rotation seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the heartbeat interval and scales the suspect/dead
    /// timeouts with it (4x and 12x — churn tests shrink all three
    /// together).
    pub fn with_heartbeat(mut self, interval: Duration) -> Self {
        self.heartbeat = interval;
        self.suspect_after = interval * 4;
        self.dead_after = interval * 12;
        self
    }

    /// Disables the local read-through copy of forwarded results.
    pub fn without_read_through(mut self) -> Self {
        self.read_through = false;
        self
    }
}

/// SplitMix64 finalizer — the repo's standard bit mixer, used here to
/// rotate the gossip target order deterministically per round.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A known peer: its dial address, health, and the last time this node
/// heard from it directly (a gossip exchange in either direction).
#[derive(Clone, Debug)]
struct PeerEntry {
    addr: String,
    state: GossipState,
    last_heard: Instant,
}

/// Point-in-time fabric counters, embedded in
/// [`ServeStats`](crate::server::ServeStats).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Whether the node runs in a fabric at all.
    pub enabled: bool,
    /// Live members (alive + suspect, self included) on the ring.
    pub members_alive: u64,
    /// Members currently suspect.
    pub members_suspect: u64,
    /// Members declared dead (off the ring, still remembered).
    pub members_dead: u64,
    /// Ring rebuilds since boot (0 = the boot ring).
    pub ring_version: u64,
    /// Requests this node forwarded to an owner.
    pub forwards_out: u64,
    /// Forwarded requests this node received as owner.
    pub forwards_in: u64,
    /// Replies served from the local read-through copy of a forwarded
    /// result.
    pub remote_hits: u64,
    /// Forward attempts that failed over to a local compute.
    pub forward_errors: u64,
    /// Alive → suspect transitions observed.
    pub peer_suspect: u64,
    /// → dead transitions observed.
    pub peer_dead: u64,
    /// Gossip rounds completed.
    pub gossip_rounds: u64,
}

/// Where a fingerprint should be served.
#[derive(Clone, Debug)]
pub struct Owner {
    /// Owning node's id.
    pub id: String,
    /// Owning node's dial address.
    pub addr: String,
    /// Whether this node is the owner.
    pub is_self: bool,
}

/// The per-node fabric state: membership table, current ring, and
/// counters. One lives inside the server's `Shared` when the config
/// carries a [`FabricConfig`].
pub struct Fabric {
    config: FabricConfig,
    /// This node's advertised address (resolved after bind).
    self_addr: String,
    /// Peers by id; never contains self.
    peers: Mutex<BTreeMap<String, PeerEntry>>,
    ring: Mutex<std::sync::Arc<Ring>>,
    ring_version: AtomicU64,
    forwards_out: AtomicU64,
    forwards_in: AtomicU64,
    remote_hits: AtomicU64,
    forward_errors: AtomicU64,
    peer_suspect: AtomicU64,
    peer_dead: AtomicU64,
    gossip_rounds: AtomicU64,
    forward_inflight: AtomicU64,
}

/// Permission for one worker to block on an outbound forward; dropped
/// when the forward (or its fallback) finishes. Bounding these below
/// the worker count keeps at least one worker computing, so two nodes
/// forwarding to each other can never deadlock both pools.
pub struct ForwardPermit<'a> {
    fabric: &'a Fabric,
}

impl Drop for ForwardPermit<'_> {
    fn drop(&mut self) {
        self.fabric.forward_inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

impl Fabric {
    /// Builds the fabric for a node advertising `self_addr`. Seed
    /// peers start alive (the ring is useful from the first request);
    /// the heartbeat timers demote any that never answer. Seed entries
    /// naming this node's own address, and duplicates, are dropped.
    pub fn new(config: FabricConfig, self_addr: String) -> Fabric {
        let now = Instant::now();
        let mut peers = BTreeMap::new();
        for (index, addr) in config.peers.iter().enumerate() {
            let addr = addr.trim();
            if addr.is_empty() || addr == self_addr {
                continue;
            }
            if peers.values().any(|p: &PeerEntry| p.addr == addr) {
                continue;
            }
            // Seed peers have addresses but no ids yet; a placeholder
            // id keyed off the address keeps them on the ring until
            // the first gossip exchange teaches us their real id.
            let id = format!("seed-{index}-{addr}");
            peers.insert(
                id,
                PeerEntry {
                    addr: addr.to_string(),
                    state: GossipState::Alive,
                    last_heard: now,
                },
            );
        }
        let fabric = Fabric {
            self_addr,
            peers: Mutex::new(peers),
            ring: Mutex::new(std::sync::Arc::new(Ring::build(&[], 1))),
            ring_version: AtomicU64::new(0),
            forwards_out: AtomicU64::new(0),
            forwards_in: AtomicU64::new(0),
            remote_hits: AtomicU64::new(0),
            forward_errors: AtomicU64::new(0),
            peer_suspect: AtomicU64::new(0),
            peer_dead: AtomicU64::new(0),
            gossip_rounds: AtomicU64::new(0),
            forward_inflight: AtomicU64::new(0),
            config,
        };
        fabric.rebuild_ring(true);
        fabric
    }

    /// This node's id.
    pub fn node_id(&self) -> &str {
        &self.config.node_id
    }

    /// This node's advertised address.
    pub fn self_addr(&self) -> &str {
        &self.self_addr
    }

    /// The fabric config.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// The current ring.
    pub fn ring(&self) -> std::sync::Arc<Ring> {
        std::sync::Arc::clone(&self.ring.lock().unwrap())
    }

    /// The owner of a fingerprint under the current ring.
    pub fn owner(&self, fingerprint: u128) -> Option<Owner> {
        let ring = self.ring();
        let (id, addr) = ring.owner_of(fingerprint)?;
        Some(Owner {
            is_self: id == self.config.node_id,
            id: id.to_string(),
            addr: addr.to_string(),
        })
    }

    /// Counts a forwarded request arriving (the `via` header seen).
    pub fn count_forward_in(&self) {
        self.forwards_in.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a reply served from the read-through copy.
    pub fn count_remote_hit(&self) {
        self.remote_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks a peer unreachable right now (a forward failed): an alive
    /// peer turns suspect immediately instead of waiting for the
    /// heartbeat timer; the dead timer keeps running from the last
    /// time it was actually heard.
    pub fn note_unreachable(&self, id: &str) {
        self.forward_errors.fetch_add(1, Ordering::Relaxed);
        let mut peers = self.peers.lock().unwrap();
        if let Some(entry) = peers.get_mut(id) {
            if entry.state == GossipState::Alive {
                entry.state = GossipState::Suspect;
                self.peer_suspect.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The member table this node would gossip: itself (alive, by
    /// construction) plus every known peer with its current state.
    fn gossip_message(&self) -> GossipMessage {
        let peers = self.peers.lock().unwrap();
        let mut members = vec![GossipMember {
            id: self.config.node_id.clone(),
            addr: self.self_addr.clone(),
            state: GossipState::Alive,
        }];
        for (id, entry) in peers.iter() {
            members.push(GossipMember {
                id: id.clone(),
                addr: entry.addr.clone(),
                state: entry.state,
            });
        }
        GossipMessage {
            from_id: self.config.node_id.clone(),
            from_addr: self.self_addr.clone(),
            members,
        }
    }

    /// Handles an inbound `GOSSIP` exchange: merge the sender's view,
    /// then answer with this node's own member table (push-pull).
    pub fn handle_gossip(&self, message: &GossipMessage) -> Reply {
        self.merge_remote(&message.from_id, &message.from_addr, &message.members);
        let own = self.gossip_message();
        let members = own
            .members
            .iter()
            .map(|m| {
                Json::obj(vec![
                    ("id", Json::Str(m.id.clone())),
                    ("addr", Json::Str(m.addr.clone())),
                    ("state", Json::Str(m.state.token().to_string())),
                ])
            })
            .collect();
        Reply::new(
            ReplyStatus::Ok,
            vec![(
                "gossip",
                Json::obj(vec![
                    ("from", Json::Str(self.config.node_id.clone())),
                    ("addr", Json::Str(self.self_addr.clone())),
                    (
                        "ring_version",
                        Json::Int(self.ring_version.load(Ordering::Relaxed) as i128),
                    ),
                    ("members", Json::Arr(members)),
                ]),
            )],
        )
    }

    /// Merges a remote member view. The sender itself is direct
    /// evidence and revives to alive; third-party rows can only add
    /// members or worsen their state (suspicion travels, liveness must
    /// be witnessed), and only when this node's own evidence is stale.
    fn merge_remote(&self, from_id: &str, from_addr: &str, members: &[GossipMember]) {
        if from_id == self.config.node_id {
            return;
        }
        let now = Instant::now();
        {
            let mut peers = self.peers.lock().unwrap();
            // A seed placeholder for this address is superseded by the
            // real id the peer just introduced.
            peers.retain(|id, entry| !(entry.addr == from_addr && id != from_id));
            let entry = peers.entry(from_id.to_string()).or_insert(PeerEntry {
                addr: from_addr.to_string(),
                state: GossipState::Alive,
                last_heard: now,
            });
            entry.addr = from_addr.to_string();
            entry.state = GossipState::Alive;
            entry.last_heard = now;
            for member in members {
                if member.id == self.config.node_id
                    || member.id == from_id
                    || member.addr == self.self_addr
                {
                    continue;
                }
                match peers.get_mut(&member.id) {
                    None => {
                        // Drop a seed placeholder the row supersedes.
                        peers.retain(|id, entry| {
                            !(entry.addr == member.addr && id.starts_with("seed-"))
                        });
                        peers.insert(
                            member.id.clone(),
                            PeerEntry {
                                addr: member.addr.clone(),
                                state: member.state,
                                last_heard: now,
                            },
                        );
                        if member.state == GossipState::Suspect {
                            self.peer_suspect.fetch_add(1, Ordering::Relaxed);
                        }
                        if member.state == GossipState::Dead {
                            self.peer_dead.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Some(entry) => {
                        let stale =
                            now.duration_since(entry.last_heard) > self.config.suspect_after;
                        let worse = (member.state == GossipState::Suspect
                            && entry.state == GossipState::Alive)
                            || (member.state == GossipState::Dead
                                && entry.state != GossipState::Dead);
                        if stale && worse {
                            if member.state == GossipState::Suspect {
                                self.peer_suspect.fetch_add(1, Ordering::Relaxed);
                            }
                            if member.state == GossipState::Dead {
                                self.peer_dead.fetch_add(1, Ordering::Relaxed);
                            }
                            entry.state = member.state;
                        }
                    }
                }
            }
        }
        self.rebuild_ring(false);
    }

    /// One heartbeat round: gossip with every non-dead peer (order
    /// rotated by the seeded mixer), then apply the suspect/dead
    /// timers and rebuild the ring if the live set changed.
    pub fn tick(&self) {
        let round = self.gossip_rounds.fetch_add(1, Ordering::Relaxed);
        let targets: Vec<(String, String)> = {
            let peers = self.peers.lock().unwrap();
            peers
                .iter()
                .filter(|(_, e)| e.state != GossipState::Dead)
                .map(|(id, e)| (id.clone(), e.addr.clone()))
                .collect()
        };
        if !targets.is_empty() {
            let start = (splitmix(self.config.seed ^ round) % targets.len() as u64) as usize;
            let message = self.gossip_message().render();
            for offset in 0..targets.len() {
                let (_, addr) = &targets[(start + offset) % targets.len()];
                if let Ok(reply) = self.gossip_roundtrip(addr, &message) {
                    self.merge_reply(&reply);
                }
            }
        }
        self.apply_timers();
    }

    /// Sends one gossip exchange and parses the reply. Failures are
    /// silent here — the timers are the authority on peer health.
    fn gossip_roundtrip(&self, addr: &str, message: &str) -> std::io::Result<Reply> {
        let timeout = self.config.heartbeat.max(Duration::from_millis(20));
        let sock_addr = addr
            .parse::<std::net::SocketAddr>()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        let mut stream =
            TcpStream::connect_timeout(&sock_addr, timeout.max(Duration::from_millis(200)))?;
        stream.set_read_timeout(Some(timeout.max(Duration::from_millis(200))))?;
        stream.set_write_timeout(Some(timeout.max(Duration::from_millis(200))))?;
        stream.write_all(message.as_bytes())?;
        stream.flush()?;
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let mut body = String::new();
        stream.read_to_string(&mut body)?;
        Reply::parse(&body).map_err(|m| std::io::Error::new(std::io::ErrorKind::InvalidData, m))
    }

    /// Merges the pull half of a gossip exchange (the peer's `gossip`
    /// reply section).
    fn merge_reply(&self, reply: &Reply) {
        let Ok(section) = reply.json("gossip") else {
            return;
        };
        let (Some(from), Some(addr)) = (
            section.get("from").and_then(Json::as_str),
            section.get("addr").and_then(Json::as_str),
        ) else {
            return;
        };
        let members: Vec<GossipMember> = section
            .get("members")
            .and_then(Json::as_arr)
            .map(|rows| {
                rows.iter()
                    .filter_map(|row| {
                        Some(GossipMember {
                            id: row.get("id")?.as_str()?.to_string(),
                            addr: row.get("addr")?.as_str()?.to_string(),
                            state: GossipState::parse(row.get("state")?.as_str()?)?,
                        })
                    })
                    .collect()
            })
            .unwrap_or_default();
        let from = from.to_string();
        let addr = addr.to_string();
        self.merge_remote(&from, &addr, &members);
    }

    /// Applies the suspect/dead timers and rebuilds the ring if the
    /// live set changed.
    fn apply_timers(&self) {
        let now = Instant::now();
        {
            let mut peers = self.peers.lock().unwrap();
            for entry in peers.values_mut() {
                let quiet = now.duration_since(entry.last_heard);
                match entry.state {
                    GossipState::Alive if quiet > self.config.suspect_after => {
                        entry.state = GossipState::Suspect;
                        self.peer_suspect.fetch_add(1, Ordering::Relaxed);
                    }
                    GossipState::Alive | GossipState::Suspect if quiet > self.config.dead_after => {
                        entry.state = GossipState::Dead;
                        self.peer_dead.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {}
                }
            }
        }
        self.rebuild_ring(false);
    }

    /// Rebuilds the ring from the live set (self + non-dead peers) and
    /// bumps the version if membership changed. `force` installs the
    /// boot ring without bumping.
    fn rebuild_ring(&self, force: bool) {
        let live: Vec<(String, String)> = {
            let peers = self.peers.lock().unwrap();
            std::iter::once((self.config.node_id.clone(), self.self_addr.clone()))
                .chain(
                    peers
                        .iter()
                        .filter(|(_, e)| e.state != GossipState::Dead)
                        .map(|(id, e)| (id.clone(), e.addr.clone())),
                )
                .collect()
        };
        let fresh = Ring::build(&live, self.config.vnodes);
        let mut current = self.ring.lock().unwrap();
        if force {
            *current = std::sync::Arc::new(fresh);
            return;
        }
        if current.members() != fresh.members() {
            *current = std::sync::Arc::new(fresh);
            self.ring_version.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A counter snapshot.
    pub fn stats(&self) -> FabricStats {
        let peers = self.peers.lock().unwrap();
        let suspect = peers
            .values()
            .filter(|e| e.state == GossipState::Suspect)
            .count() as u64;
        let dead = peers
            .values()
            .filter(|e| e.state == GossipState::Dead)
            .count() as u64;
        FabricStats {
            enabled: true,
            // Self is always alive, hence the +1.
            members_alive: peers.len() as u64 - suspect - dead + 1,
            members_suspect: suspect,
            members_dead: dead,
            ring_version: self.ring_version.load(Ordering::Relaxed),
            forwards_out: self.forwards_out.load(Ordering::Relaxed),
            forwards_in: self.forwards_in.load(Ordering::Relaxed),
            remote_hits: self.remote_hits.load(Ordering::Relaxed),
            forward_errors: self.forward_errors.load(Ordering::Relaxed),
            peer_suspect: self.peer_suspect.load(Ordering::Relaxed),
            peer_dead: self.peer_dead.load(Ordering::Relaxed),
            gossip_rounds: self.gossip_rounds.load(Ordering::Relaxed),
        }
    }

    /// The `fabric` object the STATS reply carries: counters plus the
    /// member table with states.
    pub fn stats_json(&self) -> Json {
        let s = self.stats();
        let members: Vec<Json> = {
            let peers = self.peers.lock().unwrap();
            std::iter::once(Json::obj(vec![
                ("id", Json::Str(self.config.node_id.clone())),
                ("addr", Json::Str(self.self_addr.clone())),
                ("state", Json::Str("alive".to_string())),
            ]))
            .chain(peers.iter().map(|(id, e)| {
                Json::obj(vec![
                    ("id", Json::Str(id.clone())),
                    ("addr", Json::Str(e.addr.clone())),
                    ("state", Json::Str(e.state.token().to_string())),
                ])
            }))
            .collect()
        };
        Json::obj(vec![
            ("enabled", Json::Bool(true)),
            ("node_id", Json::Str(self.config.node_id.clone())),
            ("addr", Json::Str(self.self_addr.clone())),
            ("ring_version", Json::Int(s.ring_version as i128)),
            ("members_alive", Json::Int(s.members_alive as i128)),
            ("members_suspect", Json::Int(s.members_suspect as i128)),
            ("members_dead", Json::Int(s.members_dead as i128)),
            ("forwards_out", Json::Int(s.forwards_out as i128)),
            ("forwards_in", Json::Int(s.forwards_in as i128)),
            ("remote_hits", Json::Int(s.remote_hits as i128)),
            ("forward_errors", Json::Int(s.forward_errors as i128)),
            ("peer_suspect", Json::Int(s.peer_suspect as i128)),
            ("peer_dead", Json::Int(s.peer_dead as i128)),
            ("gossip_rounds", Json::Int(s.gossip_rounds as i128)),
            ("members", Json::Arr(members)),
        ])
    }

    /// Tries to acquire one of `limit` outbound-forward slots. `None`
    /// means every slot is taken (or `limit` is 0, e.g. a one-worker
    /// node) and the caller should compute locally instead of waiting
    /// on the network.
    pub fn try_forward_permit(&self, limit: u64) -> Option<ForwardPermit<'_>> {
        let mut current = self.forward_inflight.load(Ordering::Relaxed);
        loop {
            if current >= limit {
                return None;
            }
            match self.forward_inflight.compare_exchange(
                current,
                current + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(ForwardPermit { fabric: self }),
                Err(live) => current = live,
            }
        }
    }

    /// Forwards a rendered solve request to the owner and returns the
    /// parsed reply. The caller decides what to do with a failure
    /// (fall back to a local compute).
    pub fn forward(&self, owner_addr: &str, request_text: &str) -> std::io::Result<Reply> {
        self.forwards_out.fetch_add(1, Ordering::Relaxed);
        let timeout = self.config.forward_timeout;
        let sock_addr = owner_addr
            .parse::<std::net::SocketAddr>()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        let connect = self
            .config
            .heartbeat
            .max(Duration::from_millis(200))
            .min(timeout);
        let mut stream = TcpStream::connect_timeout(&sock_addr, connect)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.write_all(request_text.as_bytes())?;
        stream.flush()?;
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let mut body = String::new();
        stream.read_to_string(&mut body)?;
        Reply::parse(&body).map_err(|m| std::io::Error::new(std::io::ErrorKind::InvalidData, m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn members(ids: &[&str]) -> Vec<(String, String)> {
        ids.iter()
            .map(|id| (id.to_string(), format!("127.0.0.1:0/{id}")))
            .collect()
    }

    #[test]
    fn ring_is_order_independent_and_deduped() {
        let forward = Ring::build(&members(&["a", "b", "c"]), 32);
        let mut shuffled = members(&["c", "a", "b", "b", "a"]);
        shuffled.push(("a".to_string(), "other-addr".to_string()));
        let backward = Ring::build(&shuffled, 32);
        assert_eq!(forward.members(), backward.members());
        for fp in 0..512u128 {
            assert_eq!(forward.owner_of(fp * 7919), backward.owner_of(fp * 7919));
        }
    }

    #[test]
    fn ring_owner_is_stable_across_builds() {
        // The FNV constants are pinned; a fixed fingerprint maps to a
        // fixed point forever. Guard the hash against accidental edits.
        assert_eq!(fnv1a(b""), FNV_OFFSET);
        assert_eq!(key_point(0), fnv1a(&[0u8; 16]));
        let ring = Ring::build(&members(&["n0", "n1"]), DEFAULT_VNODES);
        let first = ring.owner_of(42).map(|(id, _)| id.to_string());
        for _ in 0..8 {
            let again = Ring::build(&members(&["n0", "n1"]), DEFAULT_VNODES);
            assert_eq!(again.owner_of(42).map(|(id, _)| id.to_string()), first);
        }
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = Ring::build(&[], DEFAULT_VNODES);
        assert_eq!(ring.owner_of(7), None);
    }

    #[test]
    fn fabric_drops_self_and_duplicate_seed_peers() {
        let config = FabricConfig::new("n0").with_peers(vec![
            "127.0.0.1:9000".to_string(),
            "127.0.0.1:9000".to_string(),
            "127.0.0.1:9100".to_string(),
            "127.0.0.1:9100".to_string(),
            "127.0.0.1:9100".to_string(),
        ]);
        let fabric = Fabric::new(config, "127.0.0.1:9000".to_string());
        // Self (by address) and duplicates dropped: one real peer.
        assert_eq!(fabric.ring().members().len(), 2);
        let stats = fabric.stats();
        assert_eq!(stats.members_alive, 2);
        assert_eq!(stats.ring_version, 0);
    }

    #[test]
    fn gossip_merge_replaces_seed_placeholders_and_learns_members() {
        let config = FabricConfig::new("n0").with_peers(vec!["127.0.0.1:9100".to_string()]);
        let fabric = Fabric::new(config, "127.0.0.1:9000".to_string());
        let message = GossipMessage {
            from_id: "n1".to_string(),
            from_addr: "127.0.0.1:9100".to_string(),
            members: vec![
                GossipMember {
                    id: "n1".to_string(),
                    addr: "127.0.0.1:9100".to_string(),
                    state: GossipState::Alive,
                },
                GossipMember {
                    id: "n2".to_string(),
                    addr: "127.0.0.1:9200".to_string(),
                    state: GossipState::Alive,
                },
            ],
        };
        let reply = fabric.handle_gossip(&message);
        assert_eq!(reply.status, ReplyStatus::Ok);
        let ring = fabric.ring();
        let ids: Vec<&str> = ring.members().iter().map(|(id, _)| id.as_str()).collect();
        // The seed placeholder for :9100 was replaced by n1's real id,
        // and n2 was learned transitively.
        assert_eq!(ids, vec!["n0", "n1", "n2"]);
        // Our own row in the reply is alive.
        let section = reply.json("gossip").unwrap();
        assert_eq!(section.get("from").and_then(Json::as_str), Some("n0"),);
        assert_eq!(
            section
                .get("members")
                .and_then(Json::as_arr)
                .map(|m| m.len()),
            Some(3)
        );
    }

    #[test]
    fn timers_demote_quiet_peers_and_rebuild_the_ring() {
        let mut config = FabricConfig::new("n0").with_peers(vec!["127.0.0.1:9100".to_string()]);
        config.suspect_after = Duration::from_millis(0);
        config.dead_after = Duration::from_millis(0);
        let fabric = Fabric::new(config, "127.0.0.1:9000".to_string());
        assert_eq!(fabric.ring().members().len(), 2);
        std::thread::sleep(Duration::from_millis(5));
        // First pass: alive → suspect (still on the ring).
        fabric.apply_timers();
        let stats = fabric.stats();
        assert_eq!(stats.members_suspect, 1);
        assert_eq!(fabric.ring().members().len(), 2);
        // Second pass: suspect → dead, ring rebuilt without it.
        fabric.apply_timers();
        let stats = fabric.stats();
        assert_eq!(stats.members_dead, 1);
        assert_eq!(stats.peer_suspect, 1);
        assert_eq!(stats.peer_dead, 1);
        assert_eq!(fabric.ring().members().len(), 1);
        assert!(stats.ring_version >= 1, "death must rebuild the ring");
    }

    #[test]
    fn note_unreachable_suspects_immediately() {
        let config = FabricConfig::new("n0").with_peers(vec!["127.0.0.1:9100".to_string()]);
        let fabric = Fabric::new(config, "127.0.0.1:9000".to_string());
        let id = fabric.ring().members()[1].0.clone();
        assert_ne!(id, "n0");
        fabric.note_unreachable(&id);
        let stats = fabric.stats();
        assert_eq!(stats.members_suspect, 1);
        assert_eq!(stats.forward_errors, 1);
        // Suspect members stay on the ring until the dead timer fires.
        assert_eq!(fabric.ring().members().len(), 2);
    }

    #[test]
    fn third_party_liveness_is_not_believed_but_death_is() {
        let mut config = FabricConfig::new("n0").with_peers(vec![]);
        config.suspect_after = Duration::from_millis(0);
        let fabric = Fabric::new(config, "127.0.0.1:9000".to_string());
        // n1 introduces n2 as alive.
        fabric.handle_gossip(&GossipMessage {
            from_id: "n1".to_string(),
            from_addr: "127.0.0.1:9100".to_string(),
            members: vec![GossipMember {
                id: "n2".to_string(),
                addr: "127.0.0.1:9200".to_string(),
                state: GossipState::Alive,
            }],
        });
        assert_eq!(fabric.ring().members().len(), 3);
        std::thread::sleep(Duration::from_millis(5));
        // n1 now reports n2 dead; our evidence is stale, so believe it.
        fabric.handle_gossip(&GossipMessage {
            from_id: "n1".to_string(),
            from_addr: "127.0.0.1:9100".to_string(),
            members: vec![GossipMember {
                id: "n2".to_string(),
                addr: "127.0.0.1:9200".to_string(),
                state: GossipState::Dead,
            }],
        });
        assert_eq!(fabric.ring().members().len(), 2);
        // A third-party alive claim does not resurrect n2 …
        fabric.handle_gossip(&GossipMessage {
            from_id: "n1".to_string(),
            from_addr: "127.0.0.1:9100".to_string(),
            members: vec![GossipMember {
                id: "n2".to_string(),
                addr: "127.0.0.1:9200".to_string(),
                state: GossipState::Alive,
            }],
        });
        assert_eq!(fabric.ring().members().len(), 2);
        // … but direct contact from n2 itself does.
        fabric.handle_gossip(&GossipMessage {
            from_id: "n2".to_string(),
            from_addr: "127.0.0.1:9200".to_string(),
            members: vec![],
        });
        assert_eq!(fabric.ring().members().len(), 3);
    }
}
