//! Re-export of the canonical JSON module, which moved to
//! `rasengan-obs` so the trace exporter and the wire protocol share
//! one byte-stable serializer. Paths like `serve::json::Json` and
//! `serve::json::parse` keep working.

pub use rasengan_obs::json::*;
