//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment cannot reach crates.io, so the workspace
//! patches `criterion` to this shim. It reimplements the API subset the
//! bench files use — `Criterion`, `BenchmarkGroup`, `BenchmarkId`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with simple wall-clock timing instead of
//! criterion's statistical machinery. Each benchmark prints one line:
//!
//! ```text
//! sample/dense_16          time: 12.84 µs/iter  (32 iters)
//! ```
//!
//! Recognized CLI flags: `--quick` (shrink iteration counts), `--test`
//! (run every routine exactly once — what `cargo test --benches`
//! passes), and a positional substring filter. Unknown flags are
//! ignored so criterion-style invocations keep working.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting
/// benchmarked work (re-export of [`std::hint::black_box`]).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("sparse", 16)` displays as `sparse/16`.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }
}

/// Conversion into a benchmark name (accepts `&str`, `String`, and
/// [`BenchmarkId`], mirroring criterion's `IntoBenchmarkId`).
pub trait IntoBenchmarkId {
    /// The display name used in reports and filters.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    max_iters: u64,
    test_mode: bool,
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine`, choosing an iteration count that keeps the
    /// total under a fixed budget (one warm-up call decides).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            self.result = Some((Duration::ZERO, 1));
            return;
        }
        let warmup = Instant::now();
        black_box(routine());
        let once = warmup.elapsed();

        let budget = Duration::from_millis(if self.max_iters <= 10 { 500 } else { 2000 });
        let fit = if once.is_zero() {
            self.max_iters
        } else {
            (budget.as_nanos() / once.as_nanos().max(1)) as u64
        };
        let iters = fit.clamp(1, self.max_iters);

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.result = Some((start.elapsed(), iters));
    }
}

/// Top-level harness (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    quick: bool,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut quick = false;
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--quick" => quick = true,
                "--test" => test_mode = true,
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion {
            sample_size: 100,
            quick,
            test_mode,
            filter,
        }
    }
}

impl Criterion {
    /// Sets the target iteration count per benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into_id();
        self.run_one(&name, f);
        self
    }

    /// Opens a named group; benchmarks inside report as `group/name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.into(),
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let max_iters = if self.quick {
            (self.sample_size as u64 / 4).max(1)
        } else {
            self.sample_size as u64
        };
        let mut b = Bencher {
            max_iters,
            test_mode: self.test_mode,
            result: None,
        };
        f(&mut b);
        match b.result {
            Some((_, 1)) if self.test_mode => println!("{name:<40} ok (test mode)"),
            Some((elapsed, iters)) => {
                let per = elapsed.as_secs_f64() / iters as f64;
                println!(
                    "{name:<40} time: {:>12}/iter  ({iters} iters)",
                    format_seconds(per)
                );
            }
            None => println!("{name:<40} (no measurement: Bencher::iter never called)"),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the group's sample count (accepted for API compatibility;
    /// the shim's timing loop sizes itself).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `prefix/id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.prefix, id.into_id());
        self.criterion.run_one(&name, f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `prefix/id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.prefix, id.id);
        self.criterion.run_one(&name, |b| f(b, input));
        self
    }

    /// Ends the group (report-flush point in real criterion; a no-op
    /// here, consumed for API compatibility).
    pub fn finish(self) {}
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Declares a benchmark group function (both criterion forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion {
            sample_size: 5,
            quick: false,
            test_mode: false,
            filter: None,
        };
        let mut runs = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        // warm-up + at least one measured iteration
        assert!(runs >= 2);
    }

    #[test]
    fn groups_and_ids_compose_names() {
        assert_eq!(BenchmarkId::new("sparse", 16).into_id(), "sparse/16");
        let mut c = Criterion {
            sample_size: 2,
            quick: true,
            test_mode: true,
            filter: Some("nomatch".into()),
        };
        let mut ran = false;
        let mut g = c.benchmark_group("g");
        g.bench_function("skipped", |b| {
            b.iter(|| {
                ran = true;
            })
        });
        g.finish();
        assert!(!ran, "filter must skip non-matching benchmarks");
    }
}
