//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace
//! patches `proptest` to this std-only shim. It implements the subset
//! the workspace's property tests use — `proptest!`, `prop_compose!`,
//! `prop_assert*!`, `prop_assume!`, `Just`, range and tuple strategies,
//! and `prop::collection::vec` — as a plain randomized-case runner:
//!
//! * each `#[test]` runs [`test_runner::cases`] random cases (default
//!   64, `PROPTEST_CASES` overrides);
//! * the RNG seed is derived from the test's name, so runs are
//!   deterministic across processes and machines;
//! * there is **no shrinking** — a failing case panics with the plain
//!   assertion message (values are printed by the assertion itself).

/// Re-export of the crate under the name the real prelude provides
/// (`prop::collection::vec` etc.).
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, proptest,
    };
}

/// Deterministic case generation machinery.
pub mod test_runner {
    /// Number of random cases per property (`PROPTEST_CASES` overrides).
    pub fn cases() -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(64)
    }

    /// SplitMix64-based test RNG, seeded from the property's name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds the RNG for a named property (FNV-1a over the name).
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1_0000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `u64` below `bound` (rejection sampling; unbiased).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            if bound.is_power_of_two() {
                return self.next_u64() & (bound - 1);
            }
            let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % bound;
                }
            }
        }
    }
}

/// Value-generation strategies (subset of `proptest::strategy`).
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy that always yields a clone of the same value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Closure-backed strategy (what `prop_compose!` expands to).
    pub struct FnStrategy<T, F: Fn(&mut TestRng) -> T>(pub F);

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<T, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + (rng.next_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Anything usable as a `vec` length: a fixed size or a range.
    pub trait IntoSize {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSize for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSize for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl IntoSize for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoSize> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(strategy, len_or_range)`.
    pub fn vec<S: Strategy, L: IntoSize>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

pub use strategy::{Just, Strategy};

/// Defines property tests: each `fn` runs [`test_runner::cases`]
/// deterministic random cases of its body.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..$crate::test_runner::cases() {
                    // The body runs directly in the case loop so that
                    // `prop_assume!` (a `continue`) skips to the next case.
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Defines a named composite strategy as a function returning
/// `impl Strategy`. Supports the one- and two-stage forms; later
/// bindings may reference earlier ones (flat-map semantics).
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident()
        ($($b1:pat in $s1:expr),+ $(,)?)
        $(($($b2:pat in $s2:expr),+ $(,)?))?
        -> $ty:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name() -> impl $crate::strategy::Strategy<Value = $ty> {
            $crate::strategy::FnStrategy(move |__rng: &mut $crate::test_runner::TestRng| {
                $(let $b1 = $crate::strategy::Strategy::generate(&($s1), __rng);)+
                $($(let $b2 = $crate::strategy::Strategy::generate(&($s2), __rng);)+)?
                $body
            })
        }
    };
}

/// Asserts a condition inside a property (panics on failure; no
/// shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its precondition does not hold.
/// Expands to `continue` targeting the `proptest!` case loop, so it
/// must appear at the top level of the property body (not inside a
/// nested loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        /// Pair (n, vector of n bits) exercising the two-stage form.
        fn sized_bits()(n in 1usize..6)(bits in prop::collection::vec(0u8..2, n), n in Just(n)) -> (usize, Vec<u8>) {
            (n, bits)
        }
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in -5i64..=5, y in 0.0f64..1.0, n in 1usize..4) {
            prop_assert!((-5..=5).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn composed_strategy_is_consistent((n, bits) in sized_bits()) {
            prop_assert_eq!(bits.len(), n);
            prop_assert!(bits.iter().all(|&b| b < 2));
        }

        #[test]
        fn assume_skips_cases(v in prop::collection::vec(0u32..10, 0..4)) {
            prop_assume!(!v.is_empty());
            prop_assert!(!v.is_empty());
            prop_assert_ne!(v.len(), 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        let s = 0u64..1000;
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
