//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace patches `rand` to this std-only shim. It implements the
//! exact API subset the workspace uses — `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen::<f64>()`, `gen_range`, and `gen_bool` — with the same
//! module/trait layout as rand 0.8 so call sites compile unchanged.
//!
//! The generator is xoshiro256++ seeded through a SplitMix64 expander.
//! Streams are high quality and deterministic across platforms, but the
//! byte streams are **not** identical to the real `rand::rngs::StdRng`
//! (ChaCha12); all determinism guarantees in this workspace are defined
//! relative to this shim.

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic PRNG with the same name/role as `rand::rngs::StdRng`.
    ///
    /// xoshiro256++ by Blackman & Vigna: 256-bit state, passes BigCrush,
    /// and is cheap enough for per-shot reseeding in the trajectory
    /// sampler.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors
            // (guarantees a nonzero state for every seed).
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

/// Raw 64-bit generator interface (subset of `rand::RngCore`).
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a `u64` seed (subset of
/// `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing generation methods (subset of `rand::Rng`).
///
/// # Example
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::{Rng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let x: f64 = rng.gen();
/// assert!((0.0..1.0).contains(&x));
/// let d = rng.gen_range(0..6);
/// assert!((0..6).contains(&d));
/// ```
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`
    /// (`f64` → uniform `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from their "standard" distribution.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform [0, 1) on the dyadic grid, as rand does.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`] (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a `u64` uniformly below `bound` by rejection from the top of
/// the 64-bit space (unbiased; the loop terminates with probability 1).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, span + 1);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_covers_integer_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[rng.gen_range(0..3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(-1i64..=1);
            assert!((-1..=1).contains(&v));
        }
        for _ in 0..1000 {
            let v = rng.gen_range(1..=8);
            assert!((1..=8).contains(&v));
        }
    }

    #[test]
    fn gen_range_float() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02);
    }

    #[test]
    fn rng_usable_through_mut_reference() {
        fn draw(rng: &mut impl Rng) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(9);
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        assert_ne!(a, b);
    }
}
