//! # Rasengan
//!
//! A from-scratch Rust reproduction of **"Rasengan: A Transition
//! Hamiltonian-based Approximation Algorithm for Solving Constrained
//! Binary Optimization Problems"** (Jiang et al., MICRO 2025).
//!
//! This meta-crate re-exports the workspace's public API:
//!
//! * [`math`] — exact rational/integer linear algebra (nullspaces,
//!   ternary homogeneous bases, feasibility search).
//! * [`qsim`] — quantum circuit IR, dense and sparse simulators, noise
//!   channels, device models, transpilation.
//! * [`problems`] — the five constrained-binary-optimization domains
//!   (FLP, KPP, JSP, SCP, GCP) and the 20-instance benchmark registry.
//! * [`optim`] — derivative-free classical optimizers (COBYLA-style,
//!   Nelder–Mead, SPSA).
//! * [`baselines`] — HEA, penalty-term QAOA, and Choco-Q baselines.
//! * [`core`] — the Rasengan solver: transition Hamiltonians, circuit
//!   synthesis, Hamiltonian simplification and pruning, segmented
//!   execution, and purification-based error mitigation.
//! * [`serve`] — std-only multi-client TCP solve service with result
//!   and compile caches, admission control, and a blocking client.
//! * [`obs`] — structured tracing (deterministic span trees) and
//!   lock-sharded metrics (counters, gauges, log-bucketed histograms).
//!
//! # Quickstart
//!
//! ```
//! use rasengan::core::{Rasengan, RasenganConfig};
//! use rasengan::problems::{flp::FacilityLocation, Problem};
//!
//! // A small facility-location instance: 2 facilities, 2 demands.
//! let problem = FacilityLocation::generate(2, 2, 7).into_problem();
//! let config = RasenganConfig::default().with_seed(42);
//! let outcome = Rasengan::new(config).solve(&problem).unwrap();
//!
//! assert!(outcome.best.feasible);
//! # let _ = outcome.arg;
//! ```

pub use rasengan_baselines as baselines;
pub use rasengan_core as core;
pub use rasengan_math as math;
pub use rasengan_obs as obs;
pub use rasengan_optim as optim;
pub use rasengan_problems as problems;
pub use rasengan_qsim as qsim;
pub use rasengan_serve as serve;
