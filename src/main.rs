//! `rasengan` — command-line interface to the solver suite.
//!
//! ```text
//! rasengan solve --benchmark F2                     # Rasengan, noise-free
//! rasengan solve --benchmark J1 --algorithm chocoq  # a baseline instead
//! rasengan solve --benchmark K1 --device kyiv --shots 1024
//! rasengan inspect --benchmark S2                   # compiled-chain report
//! rasengan export --benchmark F1 --out segments.qasm
//! rasengan list                                     # the registered benchmarks
//! rasengan corpus list                              # ids + fingerprints
//! rasengan convert -f inst.qubo --recover -o inst.problem
//! rasengan serve --addr 127.0.0.1:7878 --workers 4  # solve service
//! rasengan submit -f inst.lp --addr 127.0.0.1:7878
//! ```

use rasengan::baselines::{BaselineConfig, ChocoQ, GroverAdaptiveSearch, Hea, PQaoa};
use rasengan::core::{Rasengan, RasenganConfig};
use rasengan::problems::ingest::{parse_as, write_as, Format};
use rasengan::problems::io::write_problem;
use rasengan::problems::registry::{all_ids, benchmark, BenchmarkId};
use rasengan::problems::{constraint_topology, enumerate_feasible, optimum, Problem};
use rasengan::qsim::qasm::to_qasm3;
use rasengan::qsim::{Circuit, Device};
use rasengan::serve::{
    serve, submit_with_retry, ReplyStatus, RetryPolicy, ServeConfig, SolveRequest,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        print_usage();
        return ExitCode::FAILURE;
    };
    // `corpus` takes a subcommand word before the flags.
    let (flag_args, corpus_sub) = if command == "corpus" {
        match args.get(1).map(String::as_str) {
            Some("list") => (&args[2..], Some("list")),
            other => {
                eprintln!(
                    "error: unknown corpus subcommand `{}` (expected `list`)",
                    other.unwrap_or("")
                );
                return ExitCode::FAILURE;
            }
        }
    } else {
        (&args[1..], None)
    };
    let opts = match Options::parse(flag_args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            print_usage();
            return ExitCode::FAILURE;
        }
    };

    match command.as_str() {
        "list" => cmd_list(),
        "corpus" => match corpus_sub {
            Some("list") => cmd_corpus_list(),
            _ => unreachable!("subcommand validated above"),
        },
        "save" => cmd_save(&opts),
        "convert" => cmd_convert(&opts),
        "solve" => cmd_solve(&opts),
        "serve" => cmd_serve(&opts),
        "submit" => cmd_submit(&opts),
        "inspect" => cmd_inspect(&opts),
        "export" => cmd_export(&opts),
        "help" | "--help" | "-h" => {
            print_usage();
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("error: unknown command `{other}`");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

/// Parsed command-line options.
struct Options {
    benchmark: Option<String>,
    file: Option<String>,
    algorithm: String,
    device: Option<String>,
    shots: Option<usize>,
    seed: u64,
    iterations: usize,
    layers: usize,
    retries: usize,
    degrade: bool,
    fuse: bool,
    batch: Option<usize>,
    out: Option<String>,
    addr: String,
    workers: usize,
    queue: usize,
    deadline_ms: Option<u64>,
    trace: bool,
    trace_path: Option<String>,
    state_dir: Option<String>,
    io_timeout_ms: Option<u64>,
    event_loop: Option<bool>,
    connect_retries: u32,
    format: Option<Format>,
    to: Option<Format>,
    recover: bool,
    lambda: Option<f64>,
    node_id: Option<String>,
    peers: Vec<String>,
    advertise: Option<String>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, String> {
        let mut opts = Options {
            benchmark: None,
            file: None,
            algorithm: "rasengan".to_string(),
            device: None,
            shots: None,
            seed: 7,
            iterations: 150,
            layers: 5,
            retries: 0,
            degrade: false,
            fuse: true,
            batch: None,
            out: None,
            addr: "127.0.0.1:7878".to_string(),
            workers: 4,
            queue: 64,
            deadline_ms: None,
            trace: false,
            trace_path: None,
            state_dir: None,
            io_timeout_ms: None,
            event_loop: None,
            connect_retries: 0,
            format: None,
            to: None,
            recover: false,
            lambda: None,
            node_id: None,
            peers: Vec::new(),
            advertise: None,
        };
        let mut it = args.iter().peekable();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("flag {name} needs a value"))
            };
            match flag.as_str() {
                "--benchmark" | "-b" => opts.benchmark = Some(value("--benchmark")?),
                "--file" | "-f" => opts.file = Some(value("--file")?),
                "--algorithm" | "-a" => opts.algorithm = value("--algorithm")?.to_lowercase(),
                "--device" | "-d" => opts.device = Some(value("--device")?.to_lowercase()),
                "--shots" => {
                    opts.shots = Some(
                        value("--shots")?
                            .parse()
                            .map_err(|_| "shots must be an integer".to_string())?,
                    )
                }
                "--seed" => {
                    opts.seed = value("--seed")?
                        .parse()
                        .map_err(|_| "seed must be an integer".to_string())?
                }
                "--iterations" | "-i" => {
                    opts.iterations = value("--iterations")?
                        .parse()
                        .map_err(|_| "iterations must be an integer".to_string())?
                }
                "--layers" => {
                    opts.layers = value("--layers")?
                        .parse()
                        .map_err(|_| "layers must be an integer".to_string())?
                }
                "--retries" => {
                    opts.retries = value("--retries")?
                        .parse()
                        .map_err(|_| "retries must be an integer".to_string())?
                }
                "--degrade" => opts.degrade = true,
                "--no-fuse" => opts.fuse = false,
                "--batch" => {
                    let lanes: usize = value("--batch")?
                        .parse()
                        .map_err(|_| "batch must be an integer".to_string())?;
                    if lanes == 0 {
                        return Err("batch must be positive".to_string());
                    }
                    opts.batch = Some(lanes);
                }
                "--trace" => {
                    // Optionally valued: `--trace out.jsonl` exports the
                    // span tree; a bare `--trace` (e.g. for `serve`)
                    // just switches tracing on.
                    opts.trace = true;
                    if let Some(next) = it.peek() {
                        if !next.starts_with('-') {
                            opts.trace_path = it.next().cloned();
                        }
                    }
                }
                "--addr" => opts.addr = value("--addr")?,
                "--workers" => {
                    opts.workers = value("--workers")?
                        .parse()
                        .map_err(|_| "workers must be an integer".to_string())?
                }
                "--queue" => {
                    opts.queue = value("--queue")?
                        .parse()
                        .map_err(|_| "queue must be an integer".to_string())?
                }
                "--deadline-ms" => {
                    opts.deadline_ms = Some(
                        value("--deadline-ms")?
                            .parse()
                            .map_err(|_| "deadline-ms must be an integer".to_string())?,
                    )
                }
                "--state-dir" => opts.state_dir = Some(value("--state-dir")?),
                "--io-timeout-ms" => {
                    opts.io_timeout_ms = Some(
                        value("--io-timeout-ms")?
                            .parse()
                            .map_err(|_| "io-timeout-ms must be an integer".to_string())?,
                    )
                }
                "--event-loop" => opts.event_loop = Some(true),
                "--legacy-threads" => opts.event_loop = Some(false),
                "--connect-retries" => {
                    opts.connect_retries = value("--connect-retries")?
                        .parse()
                        .map_err(|_| "connect-retries must be an integer".to_string())?
                }
                "--out" | "-o" => opts.out = Some(value("--out")?),
                "--format" => {
                    let token = value("--format")?;
                    opts.format = Some(
                        Format::parse(&token).ok_or_else(|| format!("unknown format `{token}`"))?,
                    );
                }
                "--to" => {
                    let token = value("--to")?;
                    opts.to = Some(
                        Format::parse(&token).ok_or_else(|| format!("unknown format `{token}`"))?,
                    );
                }
                "--node-id" => {
                    let id = value("--node-id")?;
                    if id.is_empty() || id.contains(char::is_whitespace) {
                        return Err("node-id must be a single non-empty token".to_string());
                    }
                    opts.node_id = Some(id);
                }
                "--peers" => {
                    // Comma-separated host:port list; empty entries are
                    // tolerated so trailing commas don't error out.
                    opts.peers.extend(
                        value("--peers")?
                            .split(',')
                            .map(str::trim)
                            .filter(|p| !p.is_empty())
                            .map(str::to_string),
                    );
                }
                "--advertise" => opts.advertise = Some(value("--advertise")?),
                "--recover" => opts.recover = true,
                "--lambda" => {
                    opts.lambda = Some(
                        value("--lambda")?
                            .parse()
                            .map_err(|_| "lambda must be a number".to_string())?,
                    )
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(opts)
    }

    /// The input format of `--file`: explicit `--format`, else the
    /// path extension (`.qubo`, `.lp`, anything else → native), with
    /// `--recover` upgrading QUBO ingestion to penalty-term recovery.
    fn input_format(&self, path: &str) -> Format {
        let format = self.format.unwrap_or_else(|| Format::from_path(path));
        match format {
            Format::Qubo if self.recover => Format::QuboRecover,
            other => other,
        }
    }

    fn problem(&self) -> Result<Problem, String> {
        if let Some(path) = &self.file {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let format = self.input_format(path);
            return parse_as(format, &text).map_err(|e| format!("{path} ({format}): {e}"));
        }
        let name = self
            .benchmark
            .as_deref()
            .ok_or("missing --benchmark or --file")?;
        let id = BenchmarkId::parse(name)
            .ok_or_else(|| format!("unknown benchmark `{name}` (try `rasengan list`)"))?;
        Ok(benchmark(id))
    }

    fn device(&self) -> Result<Option<Device>, String> {
        match self.device.as_deref() {
            None => Ok(None),
            Some("kyiv") => Ok(Some(Device::ibm_kyiv())),
            Some("brisbane") => Ok(Some(Device::ibm_brisbane())),
            Some("quebec") => Ok(Some(Device::ibm_quebec())),
            Some(other) => Err(format!(
                "unknown device `{other}` (kyiv | brisbane | quebec)"
            )),
        }
    }
}

fn print_usage() {
    eprintln!(
        "\
rasengan — transition-Hamiltonian solver for constrained binary optimization

USAGE:
  rasengan <command> [flags]

COMMANDS:
  list         show the registered benchmarks
  corpus list  show every corpus instance with its canonical fingerprint
  solve        run a solver on a benchmark
  serve        run the multi-client solve service (runs until killed)
  submit       send a problem to a running service and print the result
  convert      translate between problem formats (native | qubo | lp)
  inspect      show the compiled transition chain without solving
  export       write the compiled segments as OpenQASM 3
  save         write a benchmark instance as a problem file
  help         this message

FLAGS:
  -b, --benchmark <ID>     benchmark id (F1..P4)
  -f, --file <PATH>        load a problem file instead of a benchmark
                           (.qubo/.lp extensions select their parsers)
      --format <NAME>      input format override for --file:
                           native | qubo | qubo-recover | lp
      --to <NAME>          output format for `convert` (default: from
                           the --out extension, else native)
      --recover            lift uniform penalty cliques in a QUBO back
                           into equality constraints on ingestion
      --lambda <X>         penalty weight for QUBO export (default:
                           auto-sized from the objective)
  -a, --algorithm <NAME>   rasengan | chocoq | pqaoa | hea | gas
  -d, --device <NAME>      kyiv | brisbane | quebec (noise + timing)
      --shots <N>          shots per segment/circuit
      --seed <N>           RNG seed (default 7)
  -i, --iterations <N>     optimizer budget (default 150)
      --layers <N>         baseline layer count (default 5)
      --retries <N>        re-run a failed segment up to N times (rasengan)
      --degrade            continue past a dead segment instead of aborting
      --no-fuse            disable compiled-program execution (gate-by-gate)
      --batch <N>          lockstep trajectory batch width (default: auto;
                           env RASENGAN_BATCH; results are batch-invariant)
      --trace [PATH]       record a span tree; solve writes JSONL to PATH,
                           serve traces every request, submit asks the server
      --addr <HOST:PORT>   service address (serve bind / submit target)
      --workers <N>        service worker threads (default 4)
      --queue <N>          service admission-queue capacity (default 64)
      --deadline-ms <N>    per-request deadline for `submit`
      --state-dir <DIR>    crash-safe on-disk warm state for `serve`:
                           compiled artifacts and outcomes survive restarts
      --io-timeout-ms <N>  per-connection socket timeout for `serve`,
                           bounding stalled reads and stalled writes
      --event-loop         `serve` with the epoll reactor front end
                           (the default on Linux x86_64/aarch64)
      --legacy-threads     `serve` with the blocking thread-per-
                           connection front end
      --connect-retries <N> `submit` rides through a restarting server
                           with up to N extra connection attempts
      --peers <LIST>       comma-separated peer addresses; joins `serve`
                           to a multi-node fabric (consistent-hash
                           routing + gossip membership)
      --node-id <ID>       stable fabric identity for this node
                           (default: derived from --addr)
      --advertise <ADDR>   address peers should dial back (default:
                           the bound --addr)
  -o, --out <PATH>         output path for `export`"
    );
}

fn cmd_list() -> ExitCode {
    println!(
        "{:<6} {:>6} {:>7} {:>10} {:>10}",
        "id", "vars", "cons", "feasible", "degree"
    );
    for id in all_ids() {
        let p = benchmark(id);
        let topo = constraint_topology(&p);
        println!(
            "{:<6} {:>6} {:>7} {:>10} {:>10.2}",
            id.to_string(),
            p.n_vars(),
            p.n_constraints(),
            enumerate_feasible(&p).len(),
            topo.avg_degree
        );
    }
    ExitCode::SUCCESS
}

fn cmd_corpus_list() -> ExitCode {
    println!(
        "{:<6} {:<26} {:>6} {:>7}  fingerprint",
        "id", "name", "vars", "cons"
    );
    for id in all_ids() {
        let p = benchmark(id);
        println!(
            "{:<6} {:<26} {:>6} {:>7}  {:032x}",
            id.to_string(),
            p.name(),
            p.n_vars(),
            p.n_constraints(),
            p.fingerprint()
        );
    }
    ExitCode::SUCCESS
}

fn cmd_convert(opts: &Options) -> ExitCode {
    let problem = match opts.problem() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Target format: explicit --to, else the --out extension, else
    // native.
    let target = opts
        .to
        .unwrap_or_else(|| Format::from_path(opts.out.as_deref().unwrap_or("")));
    let rendered = if matches!(target, Format::Qubo | Format::QuboRecover) {
        rasengan::problems::ingest::qubo::write_qubo(&problem, opts.lambda)
    } else {
        write_as(target, &problem)
    };
    let text = match rendered {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot write {} as {target}: {e}", problem.name());
            return ExitCode::FAILURE;
        }
    };
    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {} as {target} to {path}", problem.name());
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

fn cmd_save(opts: &Options) -> ExitCode {
    let problem = match opts.problem() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let text = write_problem(&problem);
    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {} to {path}", problem.name());
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

fn cmd_solve(opts: &Options) -> ExitCode {
    let problem = match opts.problem() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let device = match opts.device() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "solving {} ({} vars) with {}{}",
        problem.name(),
        problem.n_vars(),
        opts.algorithm,
        device
            .as_ref()
            .map(|d| format!(" on {}", d.name))
            .unwrap_or_default()
    );

    let mut resilience_note: Option<String> = None;
    let (best_bits, best_value, feasible, arg, rate) = match opts.algorithm.as_str() {
        "rasengan" => {
            let mut cfg = RasenganConfig::default()
                .with_seed(opts.seed)
                .with_max_iterations(opts.iterations)
                .with_retry_budget(opts.retries);
            if opts.degrade {
                cfg = cfg.with_degradation();
            }
            if !opts.fuse {
                cfg = cfg.without_fusion();
            }
            if let Some(lanes) = opts.batch {
                cfg = cfg.with_batch(lanes);
            }
            if opts.trace {
                cfg = cfg.with_trace(true);
            }
            if let Some(d) = device {
                cfg = cfg.on_device(d);
            }
            if let Some(s) = opts.shots {
                cfg = cfg.with_shots(s);
            }
            match Rasengan::new(cfg).solve(&problem) {
                Ok(o) => {
                    if !o.resilience.is_clean() {
                        resilience_note = Some(o.resilience.summary());
                    }
                    if let Some(tree) = &o.trace {
                        match &opts.trace_path {
                            Some(path) => {
                                if let Err(e) = std::fs::write(path, tree.to_jsonl()) {
                                    eprintln!("error: cannot write {path}: {e}");
                                    return ExitCode::FAILURE;
                                }
                                println!("trace         : {} spans -> {path}", tree.count());
                            }
                            None => {
                                println!("trace         : {} spans", tree.count());
                            }
                        }
                    }
                    (
                        o.best.bits,
                        o.best.value,
                        o.best.feasible,
                        o.arg,
                        o.in_constraints_rate,
                    )
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        alg @ ("chocoq" | "pqaoa" | "hea" | "gas") => {
            let mut cfg = BaselineConfig::default()
                .with_seed(opts.seed)
                .with_layers(opts.layers)
                .with_max_iterations(opts.iterations);
            if let Some(d) = device {
                cfg = cfg.on_device(d);
            }
            if let Some(s) = opts.shots {
                cfg = cfg.with_shots(s);
            }
            if !opts.fuse {
                cfg = cfg.without_fusion();
            }
            let out = match alg {
                "chocoq" => match ChocoQ::new(cfg).solve(&problem) {
                    Ok(o) => o,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                "pqaoa" => PQaoa::new(cfg).with_frozen_qubits(1).solve(&problem),
                "hea" => Hea::new(cfg).solve(&problem),
                _ => GroverAdaptiveSearch::new(cfg).solve(&problem),
            };
            (
                out.best.bits,
                out.best.value,
                out.best.feasible,
                out.arg,
                out.in_constraints_rate,
            )
        }
        other => {
            eprintln!("error: unknown algorithm `{other}`");
            return ExitCode::FAILURE;
        }
    };

    let (_, e_opt) = optimum(&problem);
    println!("best solution : {best_bits:?}");
    println!("objective     : {best_value} (optimum {e_opt})");
    println!("feasible      : {feasible}");
    println!("ARG           : {arg:.4}");
    println!("in-constraints: {:.1}%", rate * 100.0);
    if let Some(note) = resilience_note {
        println!("resilience    : {note}");
    }
    ExitCode::SUCCESS
}

fn cmd_serve(opts: &Options) -> ExitCode {
    let mut config = ServeConfig::default()
        .with_addr(opts.addr.clone())
        .with_workers(opts.workers)
        .with_queue_capacity(opts.queue);
    if opts.trace {
        config = config.with_trace_all();
    }
    if let Some(dir) = &opts.state_dir {
        config = config.with_state_dir(dir);
    }
    if let Some(ms) = opts.io_timeout_ms {
        config = config.with_io_timeout(std::time::Duration::from_millis(ms.max(1)));
    }
    if let Some(event_loop) = opts.event_loop {
        config = config.with_event_loop(event_loop);
    }
    if !opts.peers.is_empty() || opts.node_id.is_some() {
        let node_id = opts
            .node_id
            .clone()
            .unwrap_or_else(|| format!("node-{}", opts.addr.replace([':', '.'], "-")));
        let mut fabric = rasengan::serve::FabricConfig::new(node_id)
            .with_peers(opts.peers.clone())
            .with_seed(opts.seed);
        if let Some(advertise) = &opts.advertise {
            fabric = fabric.with_advertise(advertise);
        }
        config = config.with_fabric(fabric);
    }
    let fabric_enabled = config.fabric.is_some();
    let event_loop = config.event_loop && rasengan::serve::EVENT_LOOP_SUPPORTED;
    let server = match serve(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot start on {}: {e}", opts.addr);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "rasengan service listening on {} ({} front end, {} workers, queue {}{}{})",
        server.addr(),
        if event_loop { "event-loop" } else { "threaded" },
        opts.workers,
        opts.queue,
        opts.state_dir
            .as_deref()
            .map(|d| format!(", state {d}"))
            .unwrap_or_default(),
        if fabric_enabled {
            format!(", fabric {} peers", opts.peers.len())
        } else {
            String::new()
        }
    );
    let persist = server.stats().persist;
    if opts.state_dir.is_some() {
        println!(
            "state recovered: {} records, {} quarantined, {} stale tmp cleaned",
            persist.recovered, persist.quarantined, persist.tmp_cleaned
        );
    }
    // Run until the process is killed; embedders wanting a graceful
    // drain should use rasengan::serve::serve directly and call
    // ServerHandle::shutdown.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn cmd_submit(opts: &Options) -> ExitCode {
    // A --file submission ships the file bytes verbatim with a `format`
    // header — the server does the lowering — while a --benchmark
    // submission serializes the registry instance in native form.
    let (problem_text, format) = if let Some(path) = &opts.file {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        (text, opts.input_format(path))
    } else {
        let problem = match opts.problem() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        (write_problem(&problem), Format::Native)
    };
    let mut request = SolveRequest::new(problem_text)
        .with_format(format)
        .with_seed(opts.seed)
        .with_iterations(opts.iterations)
        .with_retries(opts.retries);
    if let Some(shots) = opts.shots {
        request = request.with_shots(shots);
    }
    if opts.degrade {
        request = request.with_degrade();
    }
    if let Some(lanes) = opts.batch {
        request = request.with_batch(lanes);
    }
    if opts.trace {
        request = request.with_trace();
    }
    if let Some(ms) = opts.deadline_ms {
        request = request.with_deadline_ms(ms);
    }
    let policy = RetryPolicy::attempts(opts.connect_retries.saturating_add(1));
    let reply = match submit_with_retry(opts.addr.as_str(), &request, policy) {
        Ok(reply) => reply,
        Err(e) => {
            eprintln!("error: cannot reach {}: {e}", opts.addr);
            return ExitCode::FAILURE;
        }
    };
    match reply.status {
        ReplyStatus::Ok => {
            for (name, body) in &reply.sections {
                println!("{name} {body}");
            }
            ExitCode::SUCCESS
        }
        ReplyStatus::Busy => {
            eprintln!("busy: {}", reply.section("service").unwrap_or("queue full"));
            ExitCode::FAILURE
        }
        ReplyStatus::Error => {
            eprintln!(
                "error: {}",
                reply.section("error").unwrap_or("unknown server error")
            );
            ExitCode::FAILURE
        }
    }
}

fn cmd_inspect(opts: &Options) -> ExitCode {
    let problem = match opts.problem() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let prepared =
        match Rasengan::new(RasenganConfig::default().with_seed(opts.seed)).prepare(&problem) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
    println!("benchmark      : {}", problem.name());
    println!("variables      : {}", problem.n_vars());
    println!("constraints    : {}", problem.n_constraints());
    println!("basis size (m) : {}", prepared.stats.m_basis);
    println!(
        "simplification : {} → {} nonzeros",
        prepared.stats.simplify_cost.0, prepared.stats.simplify_cost.1
    );
    println!(
        "chain          : {} scheduled → {} kept ({} pruned{})",
        prepared.stats.raw_ops,
        prepared.stats.kept_ops,
        prepared.chain.pruned,
        if prepared.chain.early_stopped {
            ", early stop"
        } else {
            ""
        }
    );
    println!("segments       : {}", prepared.stats.n_segments);
    println!(
        "segment depth  : {} CX (whole chain {} CX)",
        prepared.stats.max_segment_cx_depth, prepared.stats.total_cx_depth
    );
    println!("parameters     : {}", prepared.stats.n_params);
    for (i, op) in prepared.chain.ops.iter().enumerate() {
        println!("  τ_{i:<2} u = {:?}  ({} CX)", op.u(), op.cx_cost());
    }
    // Draw the first transition operator's synthesized circuit if it
    // fits a terminal comfortably.
    if let Some(op) = prepared.chain.ops.first() {
        if problem.n_vars() <= 12 {
            println!("\nτ_0 synthesized circuit:");
            print!(
                "{}",
                rasengan::qsim::draw::draw_circuit(
                    &op.circuit(std::f64::consts::FRAC_PI_4, problem.n_vars())
                )
            );
        }
    }
    ExitCode::SUCCESS
}

fn cmd_export(opts: &Options) -> ExitCode {
    let problem = match opts.problem() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let prepared =
        match Rasengan::new(RasenganConfig::default().with_seed(opts.seed)).prepare(&problem) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
    let mut programs = Vec::new();
    for range in &prepared.plan.segments {
        let mut circuit = Circuit::new(problem.n_vars());
        for op in &prepared.chain.ops[range.clone()] {
            circuit.extend(&op.circuit(std::f64::consts::FRAC_PI_4, problem.n_vars()));
        }
        // Peephole-clean the concatenated segment (adjacent τ shells on
        // a shared pivot partially cancel) before serializing.
        let circuit = rasengan::qsim::peephole::optimize(&circuit);
        programs.push(to_qasm3(&circuit));
    }
    let text = programs.join("\n// ---- next segment ----\n");
    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {} segments to {path}", programs.len());
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}
