//! Determinism and golden-structure tests.
//!
//! Everything in this workspace must be bit-reproducible for a fixed
//! seed — across calls *and* across processes (no HashMap iteration
//! order, no time, no thread scheduling in results). The golden tests
//! additionally pin the compiled structure of a known benchmark so that
//! accidental changes to the basis/pruning pipeline surface as test
//! diffs rather than silent result drift.

use rasengan::baselines::{BaselineConfig, ChocoQ, GroverAdaptiveSearch, Hea, PQaoa};
use rasengan::core::{Rasengan, RasenganConfig, ResilienceConfig};
use rasengan::problems::registry::{benchmark, BenchmarkId};
use rasengan::qsim::{FaultPlan, NoiseModel};

fn f1() -> rasengan::problems::Problem {
    benchmark(BenchmarkId::parse("F1").unwrap())
}

#[test]
fn rasengan_bitwise_reproducible_noisy() {
    let cfg = RasenganConfig::default()
        .with_seed(42)
        .with_noise(NoiseModel::depolarizing(2e-3))
        .with_shots(256)
        .with_max_iterations(15);
    let a = Rasengan::new(cfg.clone()).solve(&f1()).unwrap();
    let b = Rasengan::new(cfg).solve(&f1()).unwrap();
    assert_eq!(a.distribution, b.distribution);
    assert_eq!(a.expectation, b.expectation);
    assert_eq!(a.trained_times, b.trained_times);
    assert_eq!(a.total_shots, b.total_shots);
}

#[test]
fn baselines_bitwise_reproducible() {
    let cfg = BaselineConfig::default()
        .with_seed(9)
        .with_shots(128)
        .with_layers(2)
        .with_max_iterations(10);

    let h1 = Hea::new(cfg.clone()).solve(&f1());
    let h2 = Hea::new(cfg.clone()).solve(&f1());
    assert_eq!(h1.distribution, h2.distribution);

    let p1 = PQaoa::new(cfg.clone()).solve(&f1());
    let p2 = PQaoa::new(cfg.clone()).solve(&f1());
    assert_eq!(p1.distribution, p2.distribution);

    let c1 = ChocoQ::new(cfg.clone()).solve(&f1()).unwrap();
    let c2 = ChocoQ::new(cfg.clone()).solve(&f1()).unwrap();
    assert_eq!(c1.distribution, c2.distribution);

    let g1 = GroverAdaptiveSearch::new(cfg.clone()).solve(&f1());
    let g2 = GroverAdaptiveSearch::new(cfg).solve(&f1());
    assert_eq!(g1.best.bits, g2.best.bits);
}

#[test]
fn golden_f1_compiled_structure() {
    // Pin F1's compiled pipeline: any change to nullspace ordering,
    // simplification, or pruning shows up here first.
    let prepared = Rasengan::new(RasenganConfig::default())
        .prepare(&f1())
        .unwrap();
    assert_eq!(prepared.stats.m_basis, 3, "m = n − rank = 6 − 3");
    assert_eq!(prepared.stats.raw_ops, 9, "3 rounds × 3 vectors");
    assert_eq!(prepared.stats.kept_ops, 3);
    assert_eq!(prepared.stats.n_segments, 3);
    assert_eq!(prepared.stats.max_segment_cx_depth, 136);
    assert_eq!(prepared.stats.total_cx_depth, 272);
    // The seed label is the constructive "open facility 0" solution:
    // y₀ = 1 and x₀₀ = 1 → bits 0 and 2 set.
    assert_eq!(prepared.seed_label, 0b101);
}

#[test]
fn golden_f1_solution() {
    let outcome = Rasengan::new(
        RasenganConfig::default()
            .with_seed(42)
            .with_max_iterations(100),
    )
    .solve(&f1())
    .unwrap();
    // The canonical F1 instance's optimum is stable across releases.
    // (Pinned under the vendored `rand` shim's stream; brute-force
    // enumeration confirms value 8 at these bits is the true minimum.)
    assert_eq!(outcome.best.bits, vec![0, 1, 0, 1, 0, 0]);
    assert_eq!(outcome.best.value, 8.0);
    assert!(outcome.arg < 0.01, "arg {}", outcome.arg);
}

#[test]
fn noisy_solve_identical_at_any_thread_count() {
    // The execution engine derives one RNG stream per global shot index,
    // so the trajectory ensemble — and therefore every downstream number
    // — must be byte-identical no matter how the shots are spread over
    // threads.
    let cfg = RasenganConfig::default()
        .with_seed(7)
        .with_noise(NoiseModel::depolarizing(2e-3))
        .with_shots(128)
        .with_max_iterations(8);
    let runs: Vec<_> = [1usize, 2, 8]
        .iter()
        .map(|&t| {
            Rasengan::new(cfg.clone().with_threads(t))
                .solve(&f1())
                .unwrap()
        })
        .collect();
    for other in &runs[1..] {
        assert_eq!(runs[0].distribution, other.distribution);
        assert_eq!(runs[0].expectation, other.expectation);
        assert_eq!(runs[0].trained_times, other.trained_times);
        assert_eq!(runs[0].total_shots, other.total_shots);
    }
}

#[test]
fn batched_trajectories_bitwise_match_sequential() {
    // The lockstep batched engine must reproduce the per-stream
    // sequential labels bitwise at every lane width × thread count, in
    // every noise regime — including widths the shot count does not
    // divide, where the remainder falls back to the single-trajectory
    // path.
    use rasengan::qsim::{sample_trajectories, Circuit, Gate, Program};

    let n = 6;
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.push(Gate::Ry(q, 0.3 + 0.1 * q as f64));
        c.push(Gate::Rz(q, 0.2 * (q + 1) as f64));
    }
    for q in 0..n {
        c.push(Gate::Cx(q, (q + 1) % n));
    }
    let program = Program::compile(&c);

    let regimes = [
        // Readout only: gate kernels fuse, no mid-circuit draws.
        ("quiet", NoiseModel::ibm_like(0.0, 0.0, 0.02)),
        // Everything at once: Pauli rolls plus both damping channels,
        // so every lane draws (and sometimes rescales) mid-circuit.
        (
            "hot",
            NoiseModel::depolarizing(0.05)
                .with_amplitude_damping(0.02)
                .with_phase_damping(0.01),
        ),
        // Two-qubit channel only: noise barriers on the entangler ring.
        ("mixed", NoiseModel::ibm_like(0.0, 0.03, 0.01)),
    ];
    // 13 shots: not divisible by 2, 4, or 8.
    let shots = 13;
    for (regime, noise) in &regimes {
        let reference = sample_trajectories(&program, noise, shots, 77, Some(1), Some(1));
        assert_eq!(reference.len(), shots);
        for k in [1usize, 2, 4, 8] {
            for threads in [1usize, 4] {
                let batched =
                    sample_trajectories(&program, noise, shots, 77, Some(k), Some(threads));
                assert_eq!(
                    reference, batched,
                    "[{regime}] K={k} threads={threads} diverged from sequential"
                );
            }
        }
    }
}

#[test]
fn solve_identical_at_any_batch_width() {
    // `batch` is a throughput knob: a noisy solve must produce the
    // same bytes whatever lane width is requested (the solve path is
    // sparse and never batches, and the dense engine is batch-invariant
    // by construction — this guards the config plumbing end to end).
    let cfg = RasenganConfig::default()
        .with_seed(7)
        .with_noise(NoiseModel::depolarizing(2e-3))
        .with_shots(128)
        .with_max_iterations(8);
    let base = Rasengan::new(cfg.clone()).solve(&f1()).unwrap();
    for k in [1usize, 4, 8] {
        let run = Rasengan::new(cfg.clone().with_batch(k))
            .solve(&f1())
            .unwrap();
        assert_eq!(base.distribution, run.distribution, "batch={k}");
        assert_eq!(base.expectation, run.expectation, "batch={k}");
        assert_eq!(base.trained_times, run.trained_times, "batch={k}");
        assert_eq!(base.total_shots, run.total_shots, "batch={k}");
    }
}

#[test]
fn degenerate_damping_solve_identical_at_any_thread_count() {
    // Heavy damping drives trajectory norms into the sampler's
    // degenerate regime (the clamped fallback paths in
    // `DenseState::sample` / `PreparedSampler`) and biases shots out of
    // the constraint subspace, so the solve legitimately ends in
    // `NoFeasibleOutput` — the regression being guarded is that the
    // sampler neither panics ("cannot normalize zero state") nor emits
    // out-of-support labels, and that the outcome (success or error) is
    // identical at every thread count.
    let cfg = RasenganConfig::default()
        .with_seed(3)
        .with_noise(
            NoiseModel::ibm_like(0.0, 0.0, 0.01)
                .with_amplitude_damping(1.0)
                .with_phase_damping(0.9),
        )
        .with_shots(64)
        .with_max_iterations(4);
    let runs: Vec<String> = [1usize, 2, 8]
        .iter()
        .map(
            |&t| match Rasengan::new(cfg.clone().with_threads(t)).solve(&f1()) {
                Ok(o) => format!(
                    "ok dist={:?} exp={:?} shots={}",
                    o.distribution, o.expectation, o.total_shots
                ),
                Err(e) => format!("err {e:?}"),
            },
        )
        .collect();
    assert_eq!(runs[0], runs[1], "threads 1 vs 2 diverged");
    assert_eq!(runs[0], runs[2], "threads 1 vs 8 diverged");
}

#[test]
fn exact_solve_identical_at_any_thread_count() {
    // The exact (shots: None) branch propagates input labels in
    // parallel but folds the mixture in input order, fixing the
    // floating-point accumulation order.
    let cfg = RasenganConfig::default()
        .with_seed(3)
        .with_max_iterations(20);
    let runs: Vec<_> = [1usize, 2, 8]
        .iter()
        .map(|&t| {
            Rasengan::new(cfg.clone().with_threads(t))
                .solve(&f1())
                .unwrap()
        })
        .collect();
    for other in &runs[1..] {
        assert_eq!(runs[0].distribution, other.distribution);
        assert_eq!(runs[0].expectation, other.expectation);
    }
}

#[test]
fn faulted_solve_identical_at_any_thread_count() {
    // Fault decisions are pure functions of (plan seed, segment,
    // attempt, batch) and retries draw from derived substreams, so a
    // run under heavy fault injection — retries, degradation, and all —
    // must stay byte-identical at any thread count, events included.
    let plan = FaultPlan::new(0xFA17)
        .with_shot_loss(0.25)
        .with_readout_burst(0.4, 0.15)
        .with_calibration_drift(0.5)
        .kill_segment(1, 1);
    let cfg = RasenganConfig::default()
        .with_seed(7)
        .with_noise(NoiseModel::depolarizing(2e-3))
        .with_shots(128)
        .with_max_iterations(8)
        .with_resilience(
            ResilienceConfig::default()
                .with_retry_budget(2)
                .with_degradation()
                .with_fault_plan(plan),
        );
    let runs: Vec<_> = [1usize, 2, 8]
        .iter()
        .map(|&t| {
            Rasengan::new(cfg.clone().with_threads(t))
                .solve(&f1())
                .unwrap()
        })
        .collect();
    assert!(
        runs[0].resilience.faults_injected() > 0,
        "fault plan was inert: {:?}",
        runs[0].resilience
    );
    for other in &runs[1..] {
        assert_eq!(runs[0].distribution, other.distribution);
        assert_eq!(runs[0].expectation, other.expectation);
        assert_eq!(runs[0].trained_times, other.trained_times);
        assert_eq!(runs[0].total_shots, other.total_shots);
        assert_eq!(runs[0].resilience, other.resilience);
    }
}

#[test]
fn armed_but_unused_resilience_matches_legacy() {
    // Arming retries and degradation must not perturb a single RNG
    // stream while no failure occurs: the outcome is byte-identical to
    // the plain solver's for the same seed, and the report stays empty.
    let base = RasenganConfig::default()
        .with_seed(42)
        .with_noise(NoiseModel::depolarizing(2e-3))
        .with_shots(256)
        .with_max_iterations(15);
    let plain = Rasengan::new(base.clone()).solve(&f1()).unwrap();
    let armed = Rasengan::new(
        base.with_resilience(
            ResilienceConfig::default()
                .with_retry_budget(3)
                .with_degradation(),
        ),
    )
    .solve(&f1())
    .unwrap();
    assert!(armed.resilience.is_clean());
    assert_eq!(plain.distribution, armed.distribution);
    assert_eq!(plain.expectation, armed.expectation);
    assert_eq!(plain.trained_times, armed.trained_times);
    assert_eq!(plain.total_shots, armed.total_shots);
    assert_eq!(plain.latency.quantum_s, armed.latency.quantum_s);
}

#[test]
fn multistart_identical_at_any_thread_count() {
    let cfg = RasenganConfig::default()
        .with_seed(5)
        .with_shots(64)
        .with_max_iterations(6);
    let runs: Vec<_> = [1usize, 2, 8]
        .iter()
        .map(|&t| {
            Rasengan::new(cfg.clone().with_threads(t))
                .solve_multistart(&f1(), 4)
                .unwrap()
        })
        .collect();
    for other in &runs[1..] {
        assert_eq!(runs[0].distribution, other.distribution);
        assert_eq!(runs[0].expectation, other.expectation);
        assert_eq!(runs[0].trained_times, other.trained_times);
    }
}

#[test]
fn multistart_start_zero_matches_plain_solve() {
    // Start 0 keeps the base seed, so a one-start multistart is exactly
    // `solve` — the restart seeds only diverge from start 1 on.
    let cfg = RasenganConfig::default()
        .with_seed(13)
        .with_shots(64)
        .with_max_iterations(6);
    let single = Rasengan::new(cfg.clone()).solve(&f1()).unwrap();
    let multi = Rasengan::new(cfg).solve_multistart(&f1(), 1).unwrap();
    assert_eq!(single.distribution, multi.distribution);
    assert_eq!(single.trained_times, multi.trained_times);
}

#[test]
fn registry_shapes_are_pinned() {
    // Variable counts of all 32 benchmarks, in registry order. These are
    // public API for anyone comparing against the reproduction. F/K/J
    // and B/P sizes are structural; S/G/M sizes depend on the canonical
    // seed's RNG stream (currently the vendored `rand` shim).
    let expect = [
        6, 10, 15, 20, // F
        8, 12, 16, 18, // K
        6, 10, 12, 14, // J
        6, 8, 10, 16, // S
        6, 8, 10, 20, // G
        6, 8, 10, 12, // M
        10, 12, 16, 18, // B
        4, 6, 8, 12, // P
    ];
    let ids = rasengan::problems::all_ids();
    assert_eq!(ids.len(), expect.len(), "registry size drifted");
    for (id, &vars) in ids.iter().zip(&expect) {
        assert_eq!(
            benchmark(*id).n_vars(),
            vars,
            "{id} drifted from its pinned size"
        );
    }
}

/// Golden trace tree: a traced, fixed-seed solve of a committed
/// example instance produces a byte-identical deterministic span
/// rendering at `RASENGAN_THREADS` 1, 2, and 8 — and switching tracing
/// on changes none of the result bytes. This is the tentpole guarantee
/// of the obs subsystem: span IDs derive from structure (parent ID ×
/// label × ordinal), never from time or scheduling.
#[test]
fn golden_trace_tree_identical_at_any_thread_count() {
    use rasengan::serve::render_outcome;

    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/instances/F1.problem"
    ))
    .expect("committed example instance");
    let problem = rasengan::problems::io::parse_problem(&text).unwrap();
    let cfg = RasenganConfig::default()
        .with_seed(11)
        .with_noise(NoiseModel::depolarizing(2e-3))
        .with_shots(128)
        .with_max_iterations(8)
        .with_trace(true);

    let runs: Vec<_> = [1usize, 2, 8]
        .iter()
        .map(|&t| {
            Rasengan::new(cfg.clone().with_threads(t))
                .solve(&problem)
                .unwrap()
        })
        .collect();

    // Tracing must not perturb the solve itself: byte-compare the wire
    // serialization against an untraced run at the same seed.
    let untraced = Rasengan::new(cfg.clone().with_trace(false).with_threads(1))
        .solve(&problem)
        .unwrap();
    assert!(untraced.trace.is_none());
    assert_eq!(
        render_outcome(&runs[0]),
        render_outcome(&untraced),
        "enabling --trace must not change any result byte"
    );

    // The deterministic rendering is the golden artifact: identical
    // bytes at every thread count.
    let rendered: Vec<String> = runs
        .iter()
        .map(|o| {
            o.trace
                .as_ref()
                .expect("traced solve carries a tree")
                .deterministic_json()
                .render()
        })
        .collect();
    assert_eq!(
        rendered[0], rendered[1],
        "trace tree differs between 1 and 2 threads"
    );
    assert_eq!(
        rendered[0], rendered[2],
        "trace tree differs between 1 and 8 threads"
    );

    // Structural golden checks: the root is the solve, its stages ride
    // as children in pipeline order, and the execute stage carries one
    // span per planned segment with at least one attempt each.
    let tree = runs[0].trace.as_ref().unwrap();
    let root = &tree.root;
    assert_eq!(root.label, "solve");
    let stage_labels: Vec<&str> = root.children.iter().map(|c| c.label).collect();
    assert_eq!(stage_labels, vec!["prepare", "train", "execute"]);
    let execute = &root.children[2];
    let segments: Vec<&rasengan::core::Span> = execute
        .children
        .iter()
        .filter(|c| c.label == "segment")
        .collect();
    assert_eq!(segments.len(), runs[0].stats.n_segments);
    for (i, seg) in segments.iter().enumerate() {
        assert_eq!(seg.ordinal, i as u64);
        assert!(
            seg.children.iter().any(|c| c.label == "attempt"),
            "segment {i} recorded no attempt span"
        );
    }
    // Span IDs are unique across the tree (the derivation mixes the
    // full path, so collisions would point at a hashing bug).
    fn collect_ids(span: &rasengan::core::Span, ids: &mut Vec<u64>) {
        ids.push(span.id);
        for child in &span.children {
            collect_ids(child, ids);
        }
    }
    let mut ids = Vec::new();
    collect_ids(root, &mut ids);
    let n = ids.len();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), n, "span IDs must be unique");
    assert_eq!(n, tree.count());
}

/// A served solve must be byte-identical to the in-process solver for
/// the same seed and knobs — at 1 worker and at 4 workers, and with
/// the recommended resilience posture armed. The comparison is on the
/// serialized `result` section (the wire bytes), which is the
/// strongest form of the guarantee: not just equal numbers, equal
/// bytes.
#[test]
fn served_solve_bitwise_matches_in_process() {
    use rasengan::problems::io::write_problem;
    use rasengan::serve::{render_outcome, serve, submit, ReplyStatus, ServeConfig, SolveRequest};

    let problem = f1();
    let request = SolveRequest::new(write_problem(&problem))
        .with_seed(5)
        .with_shots(256)
        .with_iterations(12)
        .with_retries(2)
        .with_degrade();

    // `retries 2` + `degrade` is exactly ResilienceConfig::recommended().
    let cfg = RasenganConfig::default()
        .with_seed(5)
        .with_shots(256)
        .with_max_iterations(12)
        .with_resilience(ResilienceConfig::recommended());
    let local = Rasengan::new(cfg).solve(&problem).unwrap();
    let local_bytes = render_outcome(&local);

    for workers in [1usize, 4] {
        let server = serve(ServeConfig::default().with_workers(workers)).unwrap();
        let reply = submit(server.addr(), &request).unwrap();
        assert_eq!(reply.status, ReplyStatus::Ok, "workers={workers}");
        assert_eq!(
            reply.section("result").unwrap(),
            local_bytes,
            "served result must be byte-identical (workers={workers})"
        );
        // A traced request returns the same result bytes plus a
        // `trace` section that byte-matches the in-process tree.
        let traced_reply = submit(server.addr(), &request.clone().with_trace()).unwrap();
        assert_eq!(traced_reply.status, ReplyStatus::Ok);
        assert_eq!(traced_reply.section("result").unwrap(), local_bytes);
        // The server solves via `solve_prepared` (the compile cache
        // owns `prepare`), so the in-process reference does the same:
        // its tree has no `prepare` child, exactly like the served one.
        let local_solver = Rasengan::new(
            RasenganConfig::default()
                .with_seed(5)
                .with_shots(256)
                .with_max_iterations(12)
                .with_resilience(ResilienceConfig::recommended())
                .with_trace(true),
        );
        let prepared = local_solver.prepare(&problem).unwrap();
        let local_traced = local_solver.solve_prepared(&problem, &prepared).unwrap();
        assert_eq!(
            traced_reply.section("trace").unwrap(),
            local_traced
                .trace
                .as_ref()
                .unwrap()
                .deterministic_json()
                .render(),
            "served trace must byte-match the in-process span tree"
        );

        // A repeat comes from the cache and must still be the same bytes.
        let cached = submit(server.addr(), &request).unwrap();
        assert_eq!(cached.section("result").unwrap(), local_bytes);
        assert_eq!(
            cached
                .json("service")
                .unwrap()
                .get("cache")
                .and_then(|c| c.as_str()),
            Some("hit"),
            "repeat must be served from the result cache"
        );
        server.shutdown();
    }
}
