//! Corruption-matrix tests for the persistent state tier.
//!
//! Every injected storage fault class — torn write, truncation, bit
//! flip, version skew — must be (a) quarantined by the restart
//! recovery scan, (b) invisible to correctness: the replayed request
//! recomputes and its `result` bytes are identical to a cold
//! in-process solve. The matrix runs at solver thread counts 1 and 4,
//! mirroring the CI `RASENGAN_THREADS` axis, via
//! `ServeConfig::with_solver_threads` so parallel test binaries don't
//! race on the environment.

use std::path::PathBuf;
use std::time::{SystemTime, UNIX_EPOCH};

use rasengan::core::Rasengan;
use rasengan::serve::{
    render_outcome, serve, submit, ReplyStatus, ServeConfig, SolveRequest, StorageFault,
    StorageFaultPlan,
};

const THREAD_MATRIX: [usize; 2] = [1, 4];
const FAULT_MATRIX: [StorageFault; 4] = [
    StorageFault::TornWrite,
    StorageFault::Truncation,
    StorageFault::BitFlip,
    StorageFault::VersionSkew,
];

fn instance_text() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples/instances/F1.problem");
    std::fs::read_to_string(path).expect("committed example instance")
}

/// A fresh state directory under the system temp dir, unique per
/// (test, pid, call) so parallel tests never share disk state.
fn state_dir(tag: &str) -> PathBuf {
    let nonce = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .as_nanos();
    let dir = std::env::temp_dir().join(format!(
        "rasengan-persist-{tag}-{}-{nonce}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn request() -> SolveRequest {
    SolveRequest::new(instance_text())
        .with_seed(11)
        .with_shots(64)
        .with_iterations(4)
}

/// The ground truth a served recompute must match byte-for-byte: a
/// cold in-process solve with the request's own config at the given
/// thread count, rendered exactly as the server renders the `result`
/// section.
fn in_process_result_bytes(threads: usize) -> String {
    let request = request();
    let problem = rasengan::problems::io::parse_problem(&request.problem_text).expect("parses");
    let outcome = Rasengan::new(request.config().with_trace(false).with_threads(threads))
        .solve(&problem)
        .expect("in-process solve");
    render_outcome(&outcome)
}

#[test]
fn every_fault_class_quarantines_and_recomputes_identically() {
    for threads in THREAD_MATRIX {
        let expected = in_process_result_bytes(threads);
        for fault in FAULT_MATRIX {
            let dir = state_dir(&format!("matrix-{fault}-{threads}"));

            // Round one: a faulty server. Every record it flushes is
            // corrupted on the way to disk, but the response itself
            // is computed in memory and must already be correct.
            let corrupt = serve(
                ServeConfig::default()
                    .with_workers(1)
                    .with_solver_threads(threads)
                    .with_state_dir(&dir)
                    .with_storage_faults(StorageFaultPlan::every_write(99, fault)),
            )
            .unwrap();
            let reply = submit(corrupt.addr(), &request()).expect("submit to faulty server");
            assert_eq!(reply.status, ReplyStatus::Ok, "{fault}/{threads}");
            assert_eq!(
                reply.section("result").unwrap(),
                expected,
                "{fault}/{threads}: faulty-server response must still be correct"
            );
            let stats = corrupt.stats();
            assert_eq!(
                stats.persist.flushes, 2,
                "{fault}/{threads}: outcome + prepared flushed"
            );
            assert_eq!(
                stats.persist.faults_injected, 2,
                "{fault}/{threads}: both flushes corrupted"
            );
            corrupt.shutdown();

            // Round two: a clean server on the same directory. The
            // recovery scan must quarantine both corrupt records —
            // never serve them — and the replayed request recomputes.
            let clean = serve(
                ServeConfig::default()
                    .with_workers(1)
                    .with_solver_threads(threads)
                    .with_state_dir(&dir),
            )
            .unwrap();
            let recovered = clean.stats();
            assert_eq!(
                recovered.persist.quarantined, 2,
                "{fault}/{threads}: both corrupt records quarantined at startup"
            );
            assert_eq!(
                recovered.persist.recovered, 0,
                "{fault}/{threads}: nothing corrupt survives recovery"
            );
            let quarantine: Vec<String> = std::fs::read_dir(dir.join("quarantine"))
                .expect("quarantine dir")
                .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
                .collect();
            assert_eq!(quarantine.len(), 2, "{fault}/{threads}");

            let reply = submit(clean.addr(), &request()).expect("replay after recovery");
            assert_eq!(reply.status, ReplyStatus::Ok, "{fault}/{threads}");
            let note = reply
                .json("service")
                .unwrap()
                .get("cache")
                .and_then(|c| c.as_str())
                .unwrap()
                .to_string();
            assert_eq!(
                note, "miss",
                "{fault}/{threads}: quarantined records must read as misses"
            );
            assert_eq!(
                reply.section("result").unwrap(),
                expected,
                "{fault}/{threads}: recompute must be byte-identical to in-process"
            );
            let stats = clean.stats();
            assert_eq!(stats.persist.disk_hits, 0, "{fault}/{threads}");
            assert!(stats.persist.disk_misses >= 1, "{fault}/{threads}");
            clean.shutdown();

            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn clean_records_survive_restart_across_the_thread_matrix() {
    // Control arm for the matrix: with no faults, the same two-server
    // dance produces a disk hit and byte-identical bytes — proving the
    // corruption tests exercise the quarantine path, not a tier that
    // never serves warm data.
    for threads in THREAD_MATRIX {
        let expected = in_process_result_bytes(threads);
        let dir = state_dir(&format!("control-{threads}"));

        let writer = serve(
            ServeConfig::default()
                .with_workers(1)
                .with_solver_threads(threads)
                .with_state_dir(&dir),
        )
        .unwrap();
        let reply = submit(writer.addr(), &request()).expect("cold submit");
        assert_eq!(reply.status, ReplyStatus::Ok);
        assert_eq!(reply.section("result").unwrap(), expected);
        writer.shutdown();

        let reader = serve(
            ServeConfig::default()
                .with_workers(1)
                .with_solver_threads(threads)
                .with_state_dir(&dir),
        )
        .unwrap();
        let recovered = reader.stats();
        assert_eq!(recovered.persist.recovered, 2, "threads {threads}");
        assert_eq!(recovered.persist.quarantined, 0, "threads {threads}");
        let reply = submit(reader.addr(), &request()).expect("warm submit");
        assert_eq!(reply.status, ReplyStatus::Ok);
        assert_eq!(
            reply
                .json("service")
                .unwrap()
                .get("cache")
                .and_then(|c| c.as_str()),
            Some("disk-hit"),
            "threads {threads}"
        );
        assert_eq!(
            reply.section("result").unwrap(),
            expected,
            "threads {threads}: disk-served bytes identical to in-process"
        );
        reader.shutdown();

        let _ = std::fs::remove_dir_all(&dir);
    }
}
