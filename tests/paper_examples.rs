//! Integration tests pinning the paper's worked examples end-to-end.
//!
//! The running example (Fig. 1a / §3): five variables, two constraints
//!
//! ```text
//! C = [1 1 -1 0 0; 0 0 1 1 -1],  b = [0, 1],  x_p = [0,0,0,1,0]
//! ```
//!
//! with homogeneous basis u₁ = [-1,1,0,0,0], u₂ = [-1,0,-1,1,0],
//! u₃ = [1,0,1,0,1] (Eq. 4) and exactly five feasible solutions.

use rasengan::core::{
    build_chain, problem_basis, simplify_basis, ChainConfig, Rasengan, RasenganConfig,
    TransitionHamiltonian,
};
use rasengan::math::IntMatrix;
use rasengan::problems::{enumerate_feasible, Objective, Problem, Sense};
use rasengan::qsim::sparse::label_from_bits;
use rasengan::qsim::{SparseState, Transition};

fn paper_problem() -> Problem {
    Problem::new(
        "fig1a",
        IntMatrix::from_rows(&[vec![1, 1, -1, 0, 0], vec![0, 0, 1, 1, -1]]),
        vec![0, 1],
        // Arbitrary nontrivial objective; the optimum is x_p itself.
        Objective::linear(vec![2.0, 3.0, 4.0, 1.0, 5.0]),
        Sense::Minimize,
    )
    .unwrap()
    .with_initial_feasible(vec![0, 0, 0, 1, 0])
    .unwrap()
}

#[test]
fn figure1a_has_exactly_five_feasible_solutions() {
    let feas = enumerate_feasible(&paper_problem());
    assert_eq!(feas.len(), 5);
    // The solutions listed in §3.
    for expect in [
        vec![0, 0, 0, 1, 0], // x_p
        vec![1, 0, 1, 0, 0], // x_p − u₂
        vec![0, 1, 1, 0, 0], // x_p − u₂ + u₁
        vec![1, 0, 1, 1, 1], // x_p + u₃
        vec![0, 1, 1, 1, 1],
    ] {
        assert!(feas.contains(&expect), "missing {expect:?}");
    }
}

#[test]
fn equation4_basis_dimensions() {
    let basis = problem_basis(&paper_problem()).unwrap();
    assert_eq!(basis.len(), 3, "n − rank = 5 − 2 = 3 basis vectors");
    let c = paper_problem().constraints().clone();
    for u in &basis {
        assert!(u.iter().all(|&v| v.abs() <= 1));
        assert!(c.mul_vec(u).iter().all(|&v| v == 0));
    }
}

#[test]
fn equation5_transition_swaps_the_paper_pair() {
    // u₂ connects x_p = [0,0,0,1,0] and x₂ = [1,0,1,0,0] (Eq. 5).
    let h = TransitionHamiltonian::new(vec![-1, 0, -1, 1, 0]);
    let xp = label_from_bits(&[0, 0, 0, 1, 0]);
    let x2 = label_from_bits(&[1, 0, 1, 0, 0]);
    assert_eq!(h.partner(xp), Some(x2));
    assert_eq!(h.partner(x2), Some(xp));
}

#[test]
fn equation6_amplitudes_cos_sin() {
    let tr = Transition::from_u(&[-1, 0, -1, 1, 0]);
    let mut s = SparseState::from_bits(&[0, 0, 0, 1, 0]);
    let t = 0.87f64;
    s.apply_transition(&tr, t);
    let xp = label_from_bits(&[0, 0, 0, 1, 0]);
    let x2 = label_from_bits(&[1, 0, 1, 0, 0]);
    assert!((s.probability(xp) - t.cos().powi(2)).abs() < 1e-12);
    assert!((s.probability(x2) - t.sin().powi(2)).abs() < 1e-12);
}

#[test]
fn figure5_simplification_produces_the_sparser_u2() {
    let basis = vec![
        vec![-1, 1, 0, 0, 0],
        vec![-1, 0, -1, 1, 0],
        vec![1, 0, 1, 0, 1],
    ];
    let result = simplify_basis(&basis);
    assert!(
        result.basis.contains(&vec![0, 0, 0, 1, 1]),
        "u₂ + u₃ = [0,0,0,1,1] expected in {:?}",
        result.basis
    );
}

#[test]
fn figure6_chain_prunes_the_dry_first_operator() {
    let basis = problem_basis(&paper_problem()).unwrap();
    let seed = label_from_bits(&[0, 0, 0, 1, 0]);
    let chain = build_chain(&basis, seed, &ChainConfig::default());
    assert!(chain.pruned >= 1, "at least τ₁ is redundant (Fig. 6a)");
    assert_eq!(chain.reached_states, 5, "chain still covers everything");
}

#[test]
fn full_solve_lands_on_the_optimum_basis_state() {
    let p = paper_problem();
    let outcome = Rasengan::new(
        RasenganConfig::default()
            .with_seed(9)
            .with_max_iterations(200),
    )
    .solve(&p)
    .unwrap();
    // Optimum is x_p (value 1.0): cheaper than all four alternatives.
    assert_eq!(outcome.best.bits, vec![0, 0, 0, 1, 0]);
    assert_eq!(outcome.best.value, 1.0);
    assert!(outcome.arg < 0.05, "ARG {}", outcome.arg);
    // §3: "the quantum state can be a basis state" — most of the mass
    // should sit on the optimum after training.
    let p_opt = outcome
        .distribution
        .get(&label_from_bits(&[0, 0, 0, 1, 0]))
        .copied()
        .unwrap_or(0.0);
    assert!(p_opt > 0.5, "optimum probability only {p_opt}");
}
