//! Service smoke test (mirrors the CI service-smoke job): an ephemeral
//! server, the committed example instances submitted concurrently,
//! every response parsed, the cache-hit counter exercised, and the
//! load-shedding path shown to answer with structured `BUSY`.

use rasengan::serve::{ping, serve, stats, submit, ReplyStatus, ServeConfig, SolveRequest};
use std::path::PathBuf;

fn instance_texts() -> Vec<(String, String)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples/instances");
    let mut instances: Vec<(String, String)> = std::fs::read_dir(&dir)
        .expect("examples/instances exists")
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            if path.extension()? != "problem" {
                return None;
            }
            let name = path.file_stem()?.to_string_lossy().into_owned();
            Some((name, std::fs::read_to_string(&path).ok()?))
        })
        .collect();
    instances.sort();
    assert!(
        instances.len() >= 5,
        "expected the committed example instances, found {}",
        instances.len()
    );
    instances
}

#[test]
fn concurrent_submissions_parse_and_hit_the_cache() {
    let server = serve(ServeConfig::default().with_workers(4)).unwrap();
    let addr = server.addr();

    assert_eq!(ping(addr).unwrap().status, ReplyStatus::Ok);

    let instances = instance_texts();
    let requests: Vec<SolveRequest> = instances
        .iter()
        .map(|(_, text)| {
            SolveRequest::new(text.clone())
                .with_seed(3)
                .with_shots(128)
                .with_iterations(8)
        })
        .collect();

    // Two rounds of every instance, all in flight at once: round one
    // populates the caches, round two must hit them. Each request
    // carries identical knobs, so the second round's responses must be
    // byte-identical to the first's.
    let first: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = requests
            .iter()
            .map(|request| {
                scope.spawn(move || {
                    let reply = submit(addr, request).expect("submit");
                    assert_eq!(reply.status, ReplyStatus::Ok);
                    reply.json("result").expect("result parses as JSON");
                    reply.json("timing").expect("timing parses as JSON");
                    reply.json("service").expect("service parses as JSON");
                    reply.section("result").unwrap().to_string()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let second: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = requests
            .iter()
            .map(|request| {
                scope.spawn(move || {
                    let reply = submit(addr, request).expect("submit");
                    assert_eq!(reply.status, ReplyStatus::Ok);
                    assert_eq!(
                        reply
                            .json("service")
                            .unwrap()
                            .get("cache")
                            .and_then(|c| c.as_str()),
                        Some("hit")
                    );
                    reply.section("result").unwrap().to_string()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(first, second, "cached results must be byte-identical");

    // The counters saw all of it, via both the API and the wire.
    let snapshot = server.stats();
    assert!(snapshot.result_hits >= requests.len() as u64);
    assert_eq!(snapshot.served_ok, 2 * requests.len() as u64);
    let wire = stats(addr).unwrap();
    assert_eq!(wire.status, ReplyStatus::Ok);
    let wire_stats = wire.json("stats").unwrap();
    assert!(
        wire_stats
            .get("result_hits")
            .and_then(|v| v.as_i128())
            .unwrap()
            >= requests.len() as i128
    );
    server.shutdown();
}

#[test]
fn batch_width_is_invisible_to_the_result_cache() {
    // The `batch` header is a throughput knob, deliberately absent from
    // the result-cache key: requests differing only in batch width must
    // share one cache slot and return byte-identical `result` bytes.
    let server = serve(ServeConfig::default().with_workers(1)).unwrap();
    let addr = server.addr();
    let (_, text) = instance_texts().into_iter().next().unwrap();
    let base = SolveRequest::new(text)
        .with_seed(9)
        .with_shots(128)
        .with_iterations(8);

    let first = submit(addr, &base.clone().with_batch(1)).expect("submit");
    assert_eq!(first.status, ReplyStatus::Ok);
    let second = submit(addr, &base.with_batch(4)).expect("submit");
    assert_eq!(second.status, ReplyStatus::Ok);
    assert_eq!(
        second
            .json("service")
            .unwrap()
            .get("cache")
            .and_then(|c| c.as_str()),
        Some("hit"),
        "a different batch width must still hit the cache"
    );
    assert_eq!(
        first.section("result").unwrap(),
        second.section("result").unwrap(),
        "batch width must not change result bytes"
    );
    server.shutdown();
}

#[test]
fn saturated_queue_sheds_with_structured_busy() {
    // One worker, queue of one: most of a concurrent flood must be
    // shed, and every shed response must carry queue metadata.
    let server = serve(
        ServeConfig::default()
            .with_workers(1)
            .with_queue_capacity(1),
    )
    .unwrap();
    let addr = server.addr();
    let (_, text) = instance_texts().into_iter().next().unwrap();
    let request = SolveRequest::new(text)
        .with_seed(1)
        .with_shots(256)
        .with_iterations(30);

    let statuses: Vec<ReplyStatus> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..12)
            .map(|_| {
                let request = request.clone();
                scope.spawn(move || {
                    let reply = submit(addr, &request).expect("submit");
                    if reply.status == ReplyStatus::Busy {
                        let service = reply.json("service").unwrap();
                        assert!(service.get("queue_capacity").is_some());
                        assert!(service.get("queue_depth").is_some());
                    }
                    reply.status
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let ok = statuses.iter().filter(|s| **s == ReplyStatus::Ok).count();
    let busy = statuses.iter().filter(|s| **s == ReplyStatus::Busy).count();
    assert!(ok >= 1, "someone must be served");
    assert!(busy >= 1, "a full queue must shed load");
    assert_eq!(ok + busy, statuses.len(), "no malformed responses");
    assert_eq!(server.stats().shed, busy as u64);
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_admitted_work() {
    // Admit work onto a single slow worker, then shut down while it is
    // still queued: shutdown must block until the queue drains, and
    // the queued requests must still be answered.
    let server = serve(
        ServeConfig::default()
            .with_workers(1)
            .with_queue_capacity(8),
    )
    .unwrap();
    let addr = server.addr();
    let (_, text) = instance_texts().into_iter().next().unwrap();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|seed| {
                let request = SolveRequest::new(text.clone())
                    .with_seed(seed)
                    .with_shots(128)
                    .with_iterations(10);
                scope.spawn(move || submit(addr, &request).expect("submit").status)
            })
            .collect();
        // Give the requests time to be admitted, then shut down.
        std::thread::sleep(std::time::Duration::from_millis(100));
        server.shutdown();
        for handle in handles {
            assert_eq!(handle.join().unwrap(), ReplyStatus::Ok);
        }
    });
}

#[test]
fn malformed_requests_get_structured_errors() {
    use std::io::{Read, Write};

    let server = serve(ServeConfig::default()).unwrap();
    let addr = server.addr();
    for bad in [
        "HTTP/1.1 GET /\r\n\r\n",
        "RASENGAN/1 DANCE\n",
        "RASENGAN/1 SOLVE\nvolume 11\nBEGIN PROBLEM\nEND PROBLEM\n",
        "RASENGAN/1 SOLVE\nBEGIN PROBLEM\nthis is not a problem\nEND PROBLEM\n",
    ] {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream.write_all(bad.as_bytes()).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut body = String::new();
        stream.read_to_string(&mut body).unwrap();
        assert!(
            body.starts_with("RASENGAN/1 ERROR"),
            "expected structured error, got: {body:?}"
        );
        assert!(body.contains("bad-request"), "got: {body:?}");
    }
    assert!(server.stats().bad_requests >= 4);
    server.shutdown();
}

/// A request body with one enormous garbage line. The parse error
/// echoes the offending line back, so the reply is far larger than the
/// kernel socket buffers — a client that stops reading turns the reply
/// into a genuine TCP write stall.
fn stalling_request() -> String {
    format!(
        "RASENGAN/1 SOLVE\nBEGIN PROBLEM\n{}\nEND PROBLEM\n",
        "x".repeat(900 * 1024)
    )
}

fn smallest_instance() -> String {
    instance_texts()
        .into_iter()
        .map(|(_, text)| text)
        .min_by_key(String::len)
        .unwrap()
}

#[test]
fn slowloris_trickle_is_served_by_the_reactor() {
    use rasengan::serve::{submit_trickled, EVENT_LOOP_SUPPORTED};
    if !EVENT_LOOP_SUPPORTED {
        return;
    }
    // One byte every 10 ms against a 150 ms idle timeout: each byte of
    // progress must refresh the deadline, so the request completes even
    // though it takes ~2 s of wall clock — 13x the timeout — to arrive.
    let server = serve(
        ServeConfig::default()
            .with_event_loop(true)
            .with_io_timeout(std::time::Duration::from_millis(150)),
    )
    .unwrap();
    let addr = server.addr();
    let request = SolveRequest::new(smallest_instance())
        .with_seed(5)
        .with_shots(64)
        .with_iterations(4);

    let trickled = submit_trickled(addr, &request, 1, std::time::Duration::from_millis(10))
        .expect("trickled submit");
    assert_eq!(trickled.status, ReplyStatus::Ok);
    let plain = submit(addr, &request).expect("plain submit");
    assert_eq!(
        trickled.section("result").unwrap(),
        plain.section("result").unwrap(),
        "a slow client must get the same bytes as a fast one"
    );
    assert_eq!(server.stats().timeouts, 0, "progress must defuse the timer");
    server.shutdown();
}

#[test]
fn write_stall_times_out_and_closes_cleanly() {
    use rasengan::serve::EVENT_LOOP_SUPPORTED;
    use std::io::Write;
    if !EVENT_LOOP_SUPPORTED {
        return;
    }
    // The pinned send buffer keeps the kernel from absorbing the huge
    // reply into an autotuned multi-megabyte buffer — the reply must
    // actually stall against the non-reading client.
    let server = serve(
        ServeConfig::default()
            .with_event_loop(true)
            .with_io_timeout(std::time::Duration::from_millis(300))
            .with_send_buffer_bytes(16 * 1024),
    )
    .unwrap();
    let addr = server.addr();

    // Send the stall-inducing request, then never read the reply. The
    // socket stays open (a close would fail the server's writes fast
    // with a reset instead of stalling them).
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream.write_all(stalling_request().as_bytes()).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();

    // The reactor must notice the stalled write, attribute a timeout,
    // and drop the connection — all without wedging the loop.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let stats = server.stats();
        if stats.timeouts >= 1 && stats.conns_open == 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "write stall never timed out: {stats:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    // The loop is still healthy: a well-behaved client gets served.
    let reply = submit(
        addr,
        &SolveRequest::new(smallest_instance())
            .with_seed(2)
            .with_shots(64)
            .with_iterations(4),
    )
    .expect("follow-up submit");
    assert_eq!(reply.status, ReplyStatus::Ok);
    drop(stream);
    server.shutdown();
}

#[test]
fn legacy_write_timeout_frees_the_worker() {
    use rasengan::serve::EVENT_LOOP_SUPPORTED;
    use std::io::Write;
    // The `SO_SNDBUF` pin this test depends on rides the same raw
    // syscall shim as the reactor; without it the kernel absorbs the
    // reply and there is nothing to time out.
    if !EVENT_LOOP_SUPPORTED {
        return;
    }
    // The threaded front end writes replies from its only worker; a
    // client that stops reading a huge reply must hit `SO_SNDTIMEO`,
    // count a timeout, and release the worker for the next request —
    // not pin it for the client's lifetime.
    let server = serve(
        ServeConfig::default()
            .with_event_loop(false)
            .with_workers(1)
            .with_io_timeout(std::time::Duration::from_millis(300))
            .with_send_buffer_bytes(16 * 1024),
    )
    .unwrap();
    let addr = server.addr();

    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream.write_all(stalling_request().as_bytes()).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    // Give the worker a moment to start (and stall) the reply write.
    std::thread::sleep(std::time::Duration::from_millis(100));

    // Blocks behind the stalled worker until the write timeout frees
    // it; succeeding at all is the regression being tested.
    let reply = submit(
        addr,
        &SolveRequest::new(smallest_instance())
            .with_seed(3)
            .with_shots(64)
            .with_iterations(4),
    )
    .expect("follow-up submit");
    assert_eq!(reply.status, ReplyStatus::Ok);
    assert!(
        server.stats().timeouts >= 1,
        "the stalled write must be counted as a timeout"
    );
    drop(stream);
    server.shutdown();
}

#[test]
fn idle_connections_are_cheap_for_the_reactor() {
    use rasengan::serve::EVENT_LOOP_SUPPORTED;
    if !EVENT_LOOP_SUPPORTED {
        return;
    }
    // 512 connections that never send a byte: the reactor carries them
    // as table entries, not threads, so solves proceed unimpeded.
    let server = serve(ServeConfig::default().with_event_loop(true).with_workers(2)).unwrap();
    let addr = server.addr();

    let idle: Vec<std::net::TcpStream> = (0..512)
        .map(|_| std::net::TcpStream::connect(addr).expect("idle connect"))
        .collect();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while server.stats().conns_open < 512 {
        assert!(
            std::time::Instant::now() < deadline,
            "reactor never registered the idle connections: {}",
            server.stats().conns_open
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    let reply = submit(
        addr,
        &SolveRequest::new(smallest_instance())
            .with_seed(4)
            .with_shots(64)
            .with_iterations(4),
    )
    .expect("submit with 512 idle connections held");
    assert_eq!(reply.status, ReplyStatus::Ok);
    assert!(server.stats().conns_open >= 512);

    // Dropping the clients must drain the table.
    drop(idle);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while server.stats().conns_open > 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "idle connections never drained: {}",
            server.stats().conns_open
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    server.shutdown();
}
