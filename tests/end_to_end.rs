//! End-to-end integration tests across the whole workspace: problems →
//! compilation → simulation → training → metrics.

use rasengan::baselines::{BaselineConfig, ChocoQ};
use rasengan::core::{Rasengan, RasenganConfig};
use rasengan::problems::registry::{all_ids, benchmark, BenchmarkId};
use rasengan::problems::{enumerate_feasible, optimum};
use rasengan::qsim::sparse::bits_from_label;
use rasengan::qsim::NoiseModel;

#[test]
fn every_benchmark_compiles_into_a_shallow_chain() {
    for id in all_ids() {
        let p = benchmark(id);
        let prepared = Rasengan::new(RasenganConfig::default())
            .prepare(&p)
            .unwrap_or_else(|e| panic!("{id} failed to prepare: {e}"));
        assert!(prepared.stats.kept_ops > 0, "{id}: empty chain");
        assert!(
            prepared.stats.max_segment_cx_depth <= 400,
            "{id}: segment depth {} not NISQ-shallow",
            prepared.stats.max_segment_cx_depth
        );
        // Compiled chain must span the whole feasible space.
        let feasible = enumerate_feasible(&p).len();
        assert_eq!(
            prepared.chain.reached_states, feasible,
            "{id}: chain reaches {} of {} feasible states",
            prepared.chain.reached_states, feasible
        );
    }
}

#[test]
fn rasengan_beats_or_matches_optimum_probability_on_small_benchmarks() {
    for name in ["F1", "J1", "G1", "S1"] {
        let p = benchmark(BenchmarkId::parse(name).unwrap());
        let outcome = Rasengan::new(
            RasenganConfig::default()
                .with_seed(13)
                .with_max_iterations(150),
        )
        .solve(&p)
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        let (x_opt, v_opt) = optimum(&p);
        assert!(outcome.best.feasible, "{name}: infeasible best");
        assert!(
            (outcome.best.value - v_opt).abs() < 1e-9,
            "{name}: best {} ≠ optimum {v_opt} ({x_opt:?})",
            outcome.best.value
        );
        assert!(outcome.arg < 0.6, "{name}: ARG {}", outcome.arg);
    }
}

#[test]
fn output_distributions_are_normalized_and_feasible() {
    for name in ["F2", "K1", "J2"] {
        let p = benchmark(BenchmarkId::parse(name).unwrap());
        let outcome = Rasengan::new(
            RasenganConfig::default()
                .with_seed(3)
                .with_max_iterations(40),
        )
        .solve(&p)
        .unwrap();
        let total: f64 = outcome.distribution.values().sum();
        assert!((total - 1.0).abs() < 1e-9, "{name}: mass {total}");
        let feasible = enumerate_feasible(&p);
        for &label in outcome.distribution.keys() {
            let bits = bits_from_label(label, p.n_vars());
            assert!(
                feasible.contains(&bits),
                "{name}: infeasible output {bits:?}"
            );
        }
    }
}

#[test]
fn rasengan_not_worse_than_chocoq_on_shared_seeds() {
    // The paper's headline: Rasengan improves ARG over the best prior
    // work. Check on three benchmarks with matched budgets.
    for name in ["F1", "J1", "S1"] {
        let p = benchmark(BenchmarkId::parse(name).unwrap());
        let ras = Rasengan::new(
            RasenganConfig::default()
                .with_seed(1)
                .with_max_iterations(80),
        )
        .solve(&p)
        .unwrap();
        let choco = ChocoQ::new(
            BaselineConfig::default()
                .with_seed(1)
                .with_max_iterations(80),
        )
        .solve(&p)
        .unwrap();
        assert!(
            ras.arg <= choco.arg + 0.05,
            "{name}: Rasengan ARG {} vs Choco-Q {}",
            ras.arg,
            choco.arg
        );
    }
}

#[test]
fn noisy_pipeline_survives_and_purifies() {
    let p = benchmark(BenchmarkId::parse("F1").unwrap());
    let outcome = Rasengan::new(
        RasenganConfig::default()
            .with_seed(21)
            .with_noise(NoiseModel::depolarizing(1e-3).with_amplitude_damping(1e-4))
            .with_shots(512)
            .with_max_iterations(30),
    )
    .solve(&p)
    .expect("mild noise must not kill the run");
    assert_eq!(outcome.in_constraints_rate, 1.0);
    assert!(outcome.best.feasible);
    assert!(outcome.total_shots > 0);
}

#[test]
fn heavy_noise_failure_mode_is_reported() {
    // Extreme damping should eventually produce the NoFeasibleOutput
    // failure the paper describes (Fig. 14b), not a wrong answer.
    let p = benchmark(BenchmarkId::parse("K2").unwrap());
    let mut failures = 0;
    for seed in 0..5 {
        let result = Rasengan::new(
            RasenganConfig::default()
                .with_seed(seed)
                .with_noise(NoiseModel::depolarizing(0.2).with_amplitude_damping(0.3))
                .with_shots(32)
                .with_max_iterations(3),
        )
        .solve(&p);
        match result {
            Err(rasengan::core::RasenganError::NoFeasibleOutput { .. }) => failures += 1,
            Ok(out) => assert!(out.best.feasible, "if it returns, it must be feasible"),
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(
        failures > 0,
        "extreme noise never triggered the failure mode"
    );
}

#[test]
fn non_totally_unimodular_system_still_solves() {
    // C = [1, -2, 1] is not TU (a coefficient of magnitude 2), the case
    // where Theorem 1's bound rises from m² to m³. The ternary-basis
    // repair still finds {-1,0,1} generators and the solver covers the
    // feasible set {000, 111}.
    use rasengan::math::IntMatrix;
    use rasengan::problems::{Objective, Problem, Sense};
    let c = IntMatrix::from_rows(&[vec![1, -2, 1]]);
    assert!(!rasengan::math::is_totally_unimodular(&c));
    let p = Problem::new(
        "non-tu",
        c,
        vec![0],
        // Constant offset keeps E_opt nonzero for the internal ARG.
        Objective {
            constant: 1.0,
            linear: vec![5.0, 1.0, 2.0],
            quadratic: vec![],
        },
        Sense::Minimize,
    )
    .unwrap()
    .with_initial_feasible(vec![1, 1, 1])
    .unwrap();

    assert_eq!(enumerate_feasible(&p).len(), 2);
    // Schedule extra rounds (the general-case bound) explicitly.
    let mut cfg = RasenganConfig::default()
        .with_seed(5)
        .with_max_iterations(80);
    cfg.max_rounds = Some(4);
    let outcome = Rasengan::new(cfg).solve(&p).unwrap();
    // Optimum is the all-zero solution (value 1 vs 9 for all-ones).
    assert_eq!(outcome.best.bits, vec![0, 0, 0]);
    assert!(outcome.arg < 1.0, "arg {}", outcome.arg);
}

#[test]
fn latency_accounting_is_positive_and_consistent() {
    let p = benchmark(BenchmarkId::parse("J1").unwrap());
    let outcome = Rasengan::new(
        RasenganConfig::default()
            .with_seed(2)
            .with_shots(256)
            .with_max_iterations(20),
    )
    .solve(&p)
    .unwrap();
    assert!(outcome.latency.quantum_s > 0.0);
    assert!(outcome.latency.classical_s > 0.0);
    assert!(outcome.latency.total_s() >= outcome.latency.quantum_s);
}
