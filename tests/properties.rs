//! Property-based tests (proptest) on the core invariants.

use proptest::prelude::*;
use rasengan::core::{apportion_shots, build_chain, simplify_basis, ChainConfig};
use rasengan::math::{nullspace, rank, IntMatrix};
use rasengan::qsim::peephole::optimize;
use rasengan::qsim::verify::equivalent_up_to_phase;
use rasengan::qsim::{Circuit, Gate, SparseState, Transition};

prop_compose! {
    /// A small random integer matrix with entries in `-2..=2`.
    fn matrix_strategy()(rows in 1usize..4, cols in 2usize..7)
        (entries in prop::collection::vec(-2i64..=2, rows * cols),
         rows in Just(rows), cols in Just(cols))
        -> IntMatrix
    {
        IntMatrix::from_flat(rows, cols, entries)
    }
}

prop_compose! {
    /// A nonzero ternary vector plus a basis-state label on n qubits.
    fn ternary_and_state()(n in 2usize..9)
        (u in prop::collection::vec(-1i64..=1, n),
         bits in prop::collection::vec(0i64..=1, n))
        -> (Vec<i64>, Vec<i64>)
    {
        let mut u = u;
        if u.iter().all(|&v| v == 0) {
            u[0] = 1;
        }
        (u, bits)
    }
}

proptest! {
    /// Every nullspace vector exactly annihilates the matrix.
    #[test]
    fn nullspace_vectors_annihilate(m in matrix_strategy()) {
        for u in nullspace(&m) {
            let out = m.mul_vec(&u);
            prop_assert!(out.iter().all(|&v| v == 0), "C u = {out:?} ≠ 0");
        }
    }

    /// Rank–nullity: rank + #nullspace vectors = #columns.
    #[test]
    fn rank_nullity_theorem(m in matrix_strategy()) {
        prop_assert_eq!(rank(&m) + nullspace(&m).len(), m.cols());
    }

    /// The HNF integer nullspace agrees with the rational route: same
    /// dimension, and every lattice vector annihilates the matrix.
    #[test]
    fn hnf_nullspace_matches_rational(m in matrix_strategy()) {
        let lattice = rasengan::math::integer_nullspace(&m);
        prop_assert_eq!(lattice.len(), nullspace(&m).len());
        for u in &lattice {
            let out = m.mul_vec(u);
            prop_assert!(out.iter().all(|&v| v == 0), "lattice vector leaks: {out:?}");
        }
    }

    /// `U·A = H` holds exactly for the tracked unimodular transform.
    #[test]
    fn hnf_transform_identity(m in matrix_strategy()) {
        let hnf = rasengan::math::hermite_normal_form(&m);
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                let mut acc = 0i64;
                for k in 0..m.rows() {
                    acc += hnf.u[(i, k)] * m[(k, j)];
                }
                prop_assert_eq!(acc, hnf.h[(i, j)]);
            }
        }
    }

    /// Transition application is unitary (norm preserved) and exactly
    /// inverted by negative time.
    #[test]
    fn transition_unitary_and_invertible((u, bits) in ternary_and_state(), t in -2.0f64..2.0) {
        let tr = Transition::from_u(&u);
        let mut s = SparseState::from_bits(&bits);
        s.apply_transition(&tr, t);
        prop_assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
        s.apply_transition(&tr, -t);
        let original = rasengan::qsim::sparse::label_from_bits(&bits);
        prop_assert!((s.probability(original) - 1.0).abs() < 1e-9);
    }

    /// The partner relation is an involution: partner(partner(x)) = x.
    #[test]
    fn partner_is_involution((u, bits) in ternary_and_state()) {
        let tr = Transition::from_u(&u);
        let x = rasengan::qsim::sparse::label_from_bits(&bits);
        if let Some(p) = tr.partner(x) {
            prop_assert_eq!(tr.partner(p), Some(x));
            prop_assert_ne!(p, x);
        }
    }

    /// Shot apportionment always conserves the total budget and never
    /// hands shots to zero-probability states unless forced.
    #[test]
    fn apportionment_conserves_total(
        probs in prop::collection::vec(0.0f64..1.0, 1..12),
        total in 0usize..4096,
    ) {
        // Guard the all-zero case the API rejects.
        let mut probs = probs;
        if probs.iter().sum::<f64>() == 0.0 {
            probs[0] = 0.5;
        }
        let shares = apportion_shots(&probs, total);
        prop_assert_eq!(shares.iter().sum::<usize>(), total);
        prop_assert_eq!(shares.len(), probs.len());
    }

    /// Simplification never increases the basis cost and preserves the
    /// number of vectors and their membership in the nullspace lattice.
    #[test]
    fn simplification_soundness(m in matrix_strategy()) {
        let basis: Vec<Vec<i64>> = nullspace(&m)
            .into_iter()
            .filter(|u| u.iter().all(|&v| v.abs() <= 1))
            .collect();
        prop_assume!(!basis.is_empty());
        let result = simplify_basis(&basis);
        prop_assert_eq!(result.basis.len(), basis.len());
        prop_assert!(result.cost_after <= result.cost_before);
        for u in &result.basis {
            let out = m.mul_vec(u);
            prop_assert!(out.iter().all(|&v| v == 0), "simplified vector left nullspace");
        }
    }

    /// Theorem 1 coverage on random assignment-style (TU) systems: the
    /// default chain (m rounds of m transition Hamiltonians) reaches the
    /// whole feasible set from any feasible seed.
    #[test]
    fn theorem1_coverage_on_random_assignment_systems(
        groups in prop::collection::vec(2usize..4, 1..4),
    ) {
        use rasengan::problems::{Objective, Problem, Sense};
        // One one-hot constraint per group of variables.
        let n: usize = groups.iter().sum();
        let mut rows = Vec::new();
        let mut offset = 0;
        let mut seed_bits = vec![0i64; n];
        for &g in &groups {
            let mut row = vec![0i64; n];
            for j in 0..g {
                row[offset + j] = 1;
            }
            seed_bits[offset] = 1;
            rows.push(row);
            offset += g;
        }
        let p = Problem::new(
            "prop-assign",
            IntMatrix::from_rows(&rows),
            vec![1; groups.len()],
            Objective::linear(vec![1.0; n]),
            Sense::Minimize,
        )
        .unwrap()
        .with_initial_feasible(seed_bits.clone())
        .unwrap();

        let feasible: usize = groups.iter().product();
        let basis = rasengan::core::problem_basis(&p).unwrap();
        let chain = build_chain(
            &basis,
            rasengan::qsim::sparse::label_from_bits(&seed_bits),
            &ChainConfig::default(),
        );
        prop_assert_eq!(chain.reached_states, feasible,
            "chain covered {} of {} feasible states", chain.reached_states, feasible);
    }

    /// The peephole optimizer never changes the circuit's unitary and
    /// never grows the gate count.
    #[test]
    fn peephole_preserves_semantics(ops in prop::collection::vec((0usize..8, 0usize..3, 0usize..3, -1.5f64..1.5), 1..25)) {
        let n = 3;
        let mut c = Circuit::new(n);
        for (kind, a, b, t) in ops {
            let b2 = if a == b { (b + 1) % n } else { b };
            let g = match kind {
                0 => Gate::X(a),
                1 => Gate::H(a),
                2 => Gate::Rz(a, t),
                3 => Gate::Ry(a, t),
                4 => Gate::Cx(a, b2),
                5 => Gate::Rzz(a, b2, t),
                6 => Gate::Phase(a, t),
                _ => Gate::Cp(a, b2, t),
            };
            c.push(g);
        }
        let opt = optimize(&c);
        prop_assert!(opt.len() <= c.len());
        prop_assert!(
            equivalent_up_to_phase(&c, &opt, 1e-8),
            "peephole changed semantics ({} -> {} gates)",
            c.len(),
            opt.len()
        );
    }

    /// Chain construction reaches at least as many states as any single
    /// operator could, and pruning never reduces coverage.
    #[test]
    fn pruning_preserves_coverage(seed_bits in prop::collection::vec(0i64..=1, 3..7)) {
        let n = seed_bits.len();
        // One-hot-ish basis: adjacent swaps, always ternary.
        let basis: Vec<Vec<i64>> = (0..n - 1)
            .map(|i| {
                let mut u = vec![0i64; n];
                u[i] = 1;
                u[i + 1] = -1;
                u
            })
            .collect();
        let seed = rasengan::qsim::sparse::label_from_bits(&seed_bits);
        let pruned = build_chain(&basis, seed, &ChainConfig::default());
        let unpruned = build_chain(
            &basis,
            seed,
            &ChainConfig { prune: false, early_stop: false, ..ChainConfig::default() },
        );
        prop_assert_eq!(pruned.reached_states, unpruned.reached_states);
        prop_assert!(pruned.ops.len() <= unpruned.ops.len());
    }
}

/// A random circuit over `n` qubits from encoded op tuples. With
/// `sparse_safe` the gate pool is restricted to the label-permutation /
/// diagonal set the sparse backend (and the fused sparse kernels)
/// support — no H/Rx/Ry.
fn random_circuit(n: usize, ops: &[(usize, usize, usize, f64)], sparse_safe: bool) -> Circuit {
    let mut c = Circuit::new(n);
    for &(kind, a, b, t) in ops {
        let a = a % n;
        let b = {
            let b = b % n;
            if a == b {
                (b + 1) % n
            } else {
                b
            }
        };
        let g = if sparse_safe {
            match kind % 12 {
                0 => Gate::X(a),
                1 => Gate::Y(a),
                2 => Gate::Z(a),
                3 => Gate::Rz(a, t),
                4 => Gate::Phase(a, t),
                5 => Gate::Cx(a, b),
                6 => Gate::Cz(a, b),
                7 => Gate::Swap(a, b),
                8 => Gate::Rzz(a, b, t),
                9 => Gate::Cp(a, b, t),
                10 => Gate::Mcx {
                    controls: vec![a],
                    target: b,
                },
                _ => Gate::Mcp {
                    controls: vec![a],
                    target: b,
                    theta: t,
                },
            }
        } else {
            match kind % 13 {
                0 => Gate::X(a),
                1 => Gate::Y(a),
                2 => Gate::Z(a),
                3 => Gate::H(a),
                4 => Gate::Rx(a, t),
                5 => Gate::Ry(a, t),
                6 => Gate::Rz(a, t),
                7 => Gate::Phase(a, t),
                8 => Gate::Cx(a, b),
                9 => Gate::Cz(a, b),
                10 => Gate::Swap(a, b),
                11 => Gate::Rzz(a, b, t),
                _ => Gate::Cp(a, b, t),
            }
        };
        c.push(g);
    }
    c
}

proptest! {
    /// Fused execution is the identity transformation on semantics:
    /// compiling any random circuit and running the kernels lands
    /// within 1e-9 statevector distance of gate-by-gate dense
    /// execution.
    #[test]
    fn fused_dense_matches_gate_by_gate(
        ops in prop::collection::vec((0usize..13, 0usize..5, 0usize..5, -2.0f64..2.0), 1..40),
    ) {
        use rasengan::qsim::{DenseState, Program};
        let n = 5;
        let c = random_circuit(n, &ops, false);
        let reference = DenseState::from_circuit(&c);
        let program = Program::compile(&c);
        prop_assert!(program.kernel_count() <= c.len());
        let mut fused = DenseState::zero_state(n);
        program.run_dense(&mut fused);
        let dist = reference
            .amplitudes()
            .iter()
            .zip(fused.amplitudes())
            .map(|(a, b)| (*a - *b).norm_sqr())
            .sum::<f64>()
            .sqrt();
        prop_assert!(dist <= 1e-9, "statevector distance {dist:e}");
    }

    /// The same differential on the sparse backend: any circuit from
    /// the permutation/diagonal gate pool compiles sparse-safe and the
    /// fused kernels match gate-by-gate application from any basis
    /// seed.
    #[test]
    fn fused_sparse_matches_gate_by_gate(
        ops in prop::collection::vec((0usize..12, 0usize..5, 0usize..5, -2.0f64..2.0), 1..40),
        label in 0u64..32,
    ) {
        use rasengan::qsim::Program;
        let n = 5;
        let label = label as rasengan::qsim::Label;
        let c = random_circuit(n, &ops, true);
        let program = Program::compile(&c);
        prop_assert!(program.is_sparse_safe());
        let mut reference = SparseState::basis_state(n, label);
        reference.run(&c).unwrap();
        let mut fused = SparseState::basis_state(n, label);
        program.run_sparse(&mut fused).unwrap();
        let mut dist_sqr = 0.0f64;
        for l in reference.support().into_iter().chain(fused.support()) {
            dist_sqr += (reference.amplitude(l) - fused.amplitude(l)).norm_sqr();
        }
        // Union-of-support walk counts shared labels twice; the bound
        // below absorbs that factor.
        prop_assert!(dist_sqr.sqrt() <= 2e-9, "sparse distance {:e}", dist_sqr.sqrt());
    }

    /// Noise channels are fusion barriers: a fused trajectory visits
    /// the same attachment points with the same error rates as the
    /// unfused reference, so both draw identical RNG streams — the
    /// states match bitwise and the generators stay in lockstep.
    #[test]
    fn fused_trajectory_consumes_rng_identically(
        ops in prop::collection::vec((0usize..13, 0usize..4, 0usize..4, -2.0f64..2.0), 1..30),
        seed in 0u64..1000,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use rasengan::qsim::exec::DenseTrajectoryRunner;
        use rasengan::qsim::{noise, NoiseModel, Program};
        let n = 4;
        let c = random_circuit(n, &ops, false);
        let noise_model = NoiseModel::ibm_like(0.02, 0.08, 0.01).with_amplitude_damping(0.01);
        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_b = StdRng::seed_from_u64(seed);
        let reference = noise::run_dense_trajectory(&c, &noise_model, &mut rng_a);
        let program = Program::compile(&c);
        let mut runner = DenseTrajectoryRunner::new(&program);
        let fused = runner.run(&noise_model, &mut rng_b);
        prop_assert_eq!(reference.amplitudes(), fused.amplitudes());
        prop_assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>(), "RNG streams diverged");
    }
}

proptest! {
    /// Fusion accounting is exhaustive: for any circuit and any noise
    /// regime, every source gate is either fused into a run or
    /// executed as a noise barrier — `gates_fused + barriers ==
    /// gate_count` — and the per-kind counters are self-consistent.
    /// (The counters are tallied inside the same walk that builds the
    /// executed plan, so this pins the plan itself, not a shadow.)
    #[test]
    fn fusion_counters_account_for_every_gate(
        ops in prop::collection::vec((0usize..13, 0usize..5, 0usize..5, -2.0f64..2.0), 1..40),
        p1 in 0.0f64..0.01,
        p2 in 0.0f64..0.01,
        quiet1 in 0u64..2,
        quiet2 in 0u64..2,
    ) {
        use rasengan::qsim::{NoiseModel, Program};
        let n = 5;
        let c = random_circuit(n, &ops, false);
        let program = Program::compile(&c);
        // Four activity regimes reachable by zeroing either channel:
        // quiet/quiet (full fusion), mixed, and hot/hot (all barriers).
        let noise = NoiseModel::ibm_like(
            if quiet1 == 0 { 0.0 } else { p1.max(1e-4) },
            if quiet2 == 0 { 0.0 } else { p2.max(1e-4) },
            0.01,
        );
        let stats = program.fusion_stats(&noise);
        prop_assert_eq!(stats.gate_count, program.gate_count());
        prop_assert_eq!(
            stats.gates_fused + stats.barriers,
            stats.gate_count,
            "every gate must be fused or a barrier: {stats:?}"
        );
        prop_assert_eq!(
            stats.gates_fused,
            stats.one_q_gates + stats.diagonal_gates + stats.permutation_gates
        );
        // Runs partition their gates: counts and maxima stay bounded,
        // and a nonzero gate tally implies at least one run.
        prop_assert!(stats.one_q_runs <= stats.one_q_gates);
        prop_assert!(stats.diagonal_runs <= stats.diagonal_gates);
        prop_assert!(stats.permutation_runs <= stats.permutation_gates);
        prop_assert_eq!(stats.one_q_runs == 0, stats.one_q_gates == 0);
        prop_assert_eq!(stats.diagonal_runs == 0, stats.diagonal_gates == 0);
        prop_assert_eq!(stats.permutation_runs == 0, stats.permutation_gates == 0);
        prop_assert!(stats.diagonal_run_len_max <= stats.diagonal_gates);
        prop_assert!(stats.permutation_run_len_max <= stats.permutation_gates);
        // With every channel active the plan degenerates to
        // gate-by-gate: nothing fuses.
        let all_hot = program.fusion_stats(&NoiseModel::ibm_like(0.002, 0.01, 0.01));
        prop_assert_eq!(all_hot.gates_fused, 0);
        prop_assert_eq!(all_hot.barriers, all_hot.gate_count);
    }

    /// Histogram merge is associative and commutative, and merging is
    /// equivalent to recording the concatenated sample stream — the
    /// property that makes per-shard histograms safe to aggregate in
    /// any order.
    #[test]
    fn histogram_merge_associative_commutative(
        xs in prop::collection::vec(0u64..1_000_000_000, 0..60),
        ys in prop::collection::vec(0u64..1_000_000_000, 0..60),
        zs in prop::collection::vec(0u64..1_000_000_000, 0..60),
    ) {
        use rasengan::obs::Histogram;
        let of = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let (a, b, c) = (of(&xs), of(&ys), of(&zs));

        // Commutativity: a⊕b == b⊕a.
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);

        // Associativity: (a⊕b)⊕c == a⊕(b⊕c).
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        // Merge == record-all: the merged histogram is exactly the one
        // built from the concatenated samples.
        let all: Vec<u64> = xs.iter().chain(&ys).chain(&zs).copied().collect();
        prop_assert_eq!(&ab_c, &of(&all));
        prop_assert_eq!(ab_c.count(), all.len() as u64);

        // Percentiles stay within the observed range (bucket upper
        // bounds are clamped to the true max).
        if !all.is_empty() {
            let max = *all.iter().max().unwrap();
            let min = *all.iter().min().unwrap();
            for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
                let p = ab_c.percentile(q);
                prop_assert!(p <= max, "p{q} = {p} above max {max}");
                prop_assert!(ab_c.percentile(1.0) >= min);
            }
        }
    }

    /// A problem's fingerprint is invariant under write→parse round
    /// trips and under comment / blank-line / whitespace / rename
    /// perturbations of its text form, across the whole registry —
    /// the identity the service's result cache keys on.
    #[test]
    fn fingerprint_invariant_under_text_perturbations(
        idx in 0usize..32,
        pad in 1usize..4,
        rename in 0u64..1000,
    ) {
        use rasengan::problems::io::{parse_problem, write_problem};
        use rasengan::problems::{all_ids, benchmark};

        let ids = all_ids();
        let p = benchmark(ids[idx % ids.len()]);
        let fp = p.fingerprint();

        // Round trip through the text format.
        let text = write_problem(&p);
        let q = parse_problem(&text).unwrap();
        prop_assert_eq!(q.fingerprint(), fp);

        // Perturb: rename, indent, widen whitespace runs, sprinkle
        // comments and blank lines.
        let mut noisy = format!("# perturbed copy\n\nname perturbed-{rename}\n");
        for line in text.lines() {
            if line.starts_with("name ") {
                continue;
            }
            let widened = line
                .split_whitespace()
                .collect::<Vec<_>>()
                .join(&" ".repeat(pad));
            noisy.push_str("  ");
            noisy.push_str(&widened);
            noisy.push_str("   # trailing comment\n\n");
        }
        let r = parse_problem(&noisy).unwrap();
        prop_assert_eq!(r.fingerprint(), fp);

        // And the perturbed instance still round-trips to the same
        // fingerprint through its own canonical form.
        let rr = parse_problem(&write_problem(&r)).unwrap();
        prop_assert_eq!(rr.fingerprint(), fp);
    }
}

prop_compose! {
    /// A random sparse-coordinate QUBO text. Coefficients are dyadic
    /// (k/4) so their decimal rendering round-trips exactly.
    fn qubo_text()(n in 2usize..7)
        (diag in prop::collection::vec(-12i32..=12, n),
         pairs in prop::collection::vec((0usize..8, 0usize..8, -12i32..=12), 0..8),
         maximize in 0u8..2,
         n in Just(n))
        -> (String, usize)
    {
        use std::collections::BTreeMap;
        let mut coupling: BTreeMap<(usize, usize), i32> = BTreeMap::new();
        for (a, b, w) in pairs {
            let (i, j) = (a % n, b % n);
            if i != j && w != 0 {
                coupling.insert((i.min(j), i.max(j)), w);
            }
        }
        let diag: Vec<(usize, i32)> = diag
            .into_iter()
            .enumerate()
            .filter(|&(_, c)| c != 0)
            .collect();
        let mut text = String::new();
        if maximize == 1 {
            text.push_str("s max\n");
        }
        text.push_str(&format!("p qubo 0 {n} {} {}\n", diag.len(), coupling.len()));
        for &(i, c) in &diag {
            text.push_str(&format!("{i} {i} {}\n", c as f64 * 0.25));
        }
        for (&(i, j), &w) in &coupling {
            text.push_str(&format!("{i} {j} {}\n", w as f64 * 0.25));
        }
        (text, n)
    }
}

prop_compose! {
    /// A random satisfiable LP text over `n` binaries: integer data,
    /// each row's bound hit by a known witness assignment so lowering
    /// (slack sizing + seed search) always succeeds.
    fn lp_text()(n in 2usize..6)
        (obj in prop::collection::vec(-5i32..=5, n),
         rows in prop::collection::vec(
             (prop::collection::vec(0u8..=2, n),
              prop::collection::vec(0u8..2, n),
              0u8..3),
             1..4),
         maximize in 0u8..2,
         n in Just(n))
        -> String
    {
        let mut text = String::from(if maximize == 1 { "Maximize\n" } else { "Minimize\n" });
        text.push_str(" obj: 0");
        for (i, &c) in obj.iter().enumerate() {
            if c != 0 {
                let (sign, mag) = if c < 0 { ('-', -c) } else { ('+', c) };
                text.push_str(&format!(" {sign} {mag} x{i}"));
            }
        }
        text.push('\n');
        text.push_str("Subject To\n");
        for (k, (coeffs, witness, rel)) in rows.iter().enumerate() {
            let mut coeffs = coeffs.clone();
            if coeffs.iter().all(|&a| a == 0) {
                coeffs[0] = 1;
            }
            // Bound = the witness point's row value, so the row is
            // satisfiable under <=, >=, and = alike.
            let bound: i64 = coeffs
                .iter()
                .zip(witness)
                .map(|(&a, &m)| a as i64 * m as i64)
                .sum();
            text.push_str(&format!(" c{k}: 0"));
            for (i, &a) in coeffs.iter().enumerate() {
                if a != 0 {
                    text.push_str(&format!(" + {a} x{i}"));
                }
            }
            let rel = match rel {
                0 => "<=",
                1 => ">=",
                _ => "=",
            };
            text.push_str(&format!(" {rel} {bound}\n"));
        }
        text.push_str("Binary\n");
        for i in 0..n {
            text.push_str(&format!(" x{i}"));
        }
        text.push_str("\nEnd\n");
        text
    }
}

proptest! {
    /// QUBO parse→write→parse is the identity on the lowered problem:
    /// fingerprint, objective, and sense all survive the trip.
    #[test]
    fn qubo_parse_write_parse_round_trip((text, n) in qubo_text()) {
        use rasengan::problems::ingest::qubo::{parse_qubo, write_qubo};
        let p = parse_qubo(&text, false).unwrap();
        prop_assert_eq!(p.n_vars(), n);
        let q = parse_qubo(&write_qubo(&p, None).unwrap(), false).unwrap();
        prop_assert_eq!(q.fingerprint(), p.fingerprint());
        prop_assert_eq!(&q.objective().linear, &p.objective().linear);
        prop_assert_eq!(&q.objective().quadratic, &p.objective().quadratic);
        prop_assert_eq!(q.sense(), p.sense());
    }

    /// A QUBO's fingerprint is invariant under entry-line reordering,
    /// comments (both `c` and `#` styles), blank lines, and whitespace
    /// padding of its text form.
    #[test]
    fn qubo_fingerprint_invariant_under_perturbations(
        (text, _) in qubo_text(),
        rot in 0usize..8,
        pad in 1usize..4,
    ) {
        use rasengan::problems::ingest::qubo::parse_qubo;
        let fp = parse_qubo(&text, false).unwrap().fingerprint();
        let (prefix, mut entries): (Vec<&str>, Vec<&str>) = text
            .lines()
            .partition(|l| l.starts_with('s') || l.starts_with('p'));
        if !entries.is_empty() {
            let shift = rot % entries.len();
            entries.rotate_left(shift);
        }
        let mut noisy = String::from("c leading comment\n\n");
        for line in prefix.iter().chain(&entries) {
            let widened = line
                .split_whitespace()
                .collect::<Vec<_>>()
                .join(&" ".repeat(pad));
            noisy.push_str(&format!("  {widened}   # trailing\n\nc between\n"));
        }
        prop_assert_eq!(parse_qubo(&noisy, false).unwrap().fingerprint(), fp);
    }

    /// LP parse→write→parse preserves the mathematical content
    /// (constraint rows up to order, objective, sense), and one
    /// write→parse trip is a canonicalizing fixed point: a second trip
    /// reproduces the fingerprint exactly.
    #[test]
    fn lp_parse_write_parse_round_trip(text in lp_text()) {
        use rasengan::problems::ingest::lp::{parse_lp, write_lp};
        let p = parse_lp(&text).unwrap();
        let q = parse_lp(&write_lp(&p).unwrap()).unwrap();
        prop_assert_eq!(q.n_vars(), p.n_vars());
        prop_assert_eq!(q.sense(), p.sense());
        prop_assert_eq!(&q.objective().linear, &p.objective().linear);
        let rows = |pr: &rasengan::problems::Problem| {
            let mut rows: Vec<(Vec<i64>, i64)> = pr
                .constraints()
                .iter_rows()
                .zip(pr.rhs().iter())
                .map(|(r, &b)| (r.to_vec(), b))
                .collect();
            rows.sort();
            rows
        };
        prop_assert_eq!(rows(&q), rows(&p));
        let r = parse_lp(&write_lp(&q).unwrap()).unwrap();
        prop_assert_eq!(r.fingerprint(), q.fingerprint());
    }

    /// An LP's fingerprint is invariant under constraint-row
    /// permutation, comments, blank lines, and whitespace padding —
    /// the canonical row sort inside the parser at work.
    #[test]
    fn lp_fingerprint_invariant_under_perturbations(
        text in lp_text(),
        rot in 0usize..8,
        pad in 1usize..4,
    ) {
        use rasengan::problems::ingest::lp::parse_lp;
        let fp = parse_lp(&text).unwrap().fingerprint();
        let mut noisy = String::from("\\ leading comment\n\n");
        let mut in_constraints = false;
        let mut held: Vec<String> = Vec::new();
        for line in text.lines() {
            let is_section = !line.starts_with(' ');
            if is_section && in_constraints {
                // Flush the permuted constraint block.
                let shift = if held.is_empty() { 0 } else { rot % held.len() };
                held.rotate_left(shift);
                for c in held.drain(..) {
                    noisy.push_str(&format!("{c}   \\ trailing\n\n"));
                }
                in_constraints = false;
            }
            if line == "Subject To" {
                in_constraints = true;
                noisy.push_str("Subject To\n");
                continue;
            }
            if in_constraints {
                let widened = line
                    .split_whitespace()
                    .collect::<Vec<_>>()
                    .join(&" ".repeat(pad));
                held.push(format!("   {widened}"));
                continue;
            }
            noisy.push_str(line);
            noisy.push('\n');
        }
        prop_assert_eq!(parse_lp(&noisy).unwrap().fingerprint(), fp);
    }

    /// Penalty recovery inverts `write_qubo` on random one-hot systems:
    /// exporting a linear-objective problem whose constraints are
    /// disjoint cardinality rows and re-parsing with `recover = true`
    /// restores every row and the exact residual objective.
    #[test]
    fn qubo_penalty_recovery_inverts_export(
        groups in prop::collection::vec(2usize..5, 1..4),
        coeffs in prop::collection::vec(-4i32..=4, 12),
        maximize in 0u8..2,
    ) {
        use rasengan::math::IntMatrix;
        use rasengan::problems::ingest::qubo::{parse_qubo, write_qubo};
        use rasengan::problems::{Objective, Problem, Sense};
        let n: usize = groups.iter().sum();
        let mut rows = Vec::new();
        let mut seed_bits = vec![0i64; n];
        let mut offset = 0;
        for &g in &groups {
            let mut row = vec![0i64; n];
            for j in 0..g {
                row[offset + j] = 1;
            }
            seed_bits[offset] = 1;
            rows.push(row);
            offset += g;
        }
        // Integer objective coefficients keep the penalty fold and its
        // inverse exact in floating point.
        let linear: Vec<f64> = (0..n).map(|i| coeffs[i % coeffs.len()] as f64).collect();
        let sense = if maximize == 1 { Sense::Maximize } else { Sense::Minimize };
        let p = Problem::new(
            "prop-recover",
            IntMatrix::from_rows(&rows),
            vec![1; groups.len()],
            Objective::linear(linear.clone()),
            sense,
        )
        .unwrap()
        .with_initial_feasible(seed_bits)
        .unwrap();

        let q = parse_qubo(&write_qubo(&p, None).unwrap(), true).unwrap();
        prop_assert_eq!(q.n_vars(), n);
        prop_assert_eq!(q.sense(), sense);
        prop_assert_eq!(q.n_constraints(), groups.len());
        let mut got: Vec<(Vec<i64>, i64)> = q
            .constraints()
            .iter_rows()
            .zip(q.rhs().iter())
            .map(|(r, &b)| (r.to_vec(), b))
            .collect();
        got.sort();
        let mut want: Vec<(Vec<i64>, i64)> = rows.into_iter().map(|r| (r, 1)).collect();
        want.sort();
        prop_assert_eq!(got, want);
        prop_assert_eq!(&q.objective().linear, &linear);
        prop_assert!(q.objective().quadratic.is_empty(), "penalty couplings must be fully lifted");
    }
}

// --- consistent-hash ring (serve::fabric) -------------------------------

/// Owner assignment of the full 32-instance registry corpus on a ring
/// over `n` identically-configured nodes.
fn registry_owner_counts(n: usize) -> Vec<usize> {
    use rasengan::problems::registry::{all_ids, benchmark};
    use rasengan::serve::{Ring, DEFAULT_VNODES};
    let members: Vec<(String, String)> = (0..n)
        .map(|i| (format!("node-{i}"), format!("10.0.0.{i}:7878")))
        .collect();
    let ring = Ring::build(&members, DEFAULT_VNODES);
    let mut counts = vec![0usize; n];
    for id in all_ids() {
        let fp = benchmark(id).fingerprint();
        let (owner, _) = ring.owner_of(fp).expect("non-empty ring");
        let idx: usize = owner
            .strip_prefix("node-")
            .and_then(|s| s.parse().ok())
            .expect("owner id shape");
        counts[idx] += 1;
    }
    counts
}

/// The ring spreads the registry corpus: at 2 and 4 nodes every node
/// owns work and nobody owns more than 3x the fair share; at 8 nodes
/// (4 keys per node in expectation) the bound loosens but no node may
/// own more than half the corpus.
#[test]
fn ring_balances_the_registry_corpus() {
    for n in [2usize, 4] {
        let counts = registry_owner_counts(n);
        let fair = 32.0 / n as f64;
        assert!(
            counts.iter().all(|&c| c >= 1),
            "every node must own work at n={n}: {counts:?}"
        );
        assert!(
            counts.iter().all(|&c| (c as f64) <= fair * 3.0),
            "no node may own >3x fair share at n={n}: {counts:?}"
        );
    }
    let counts = registry_owner_counts(8);
    assert_eq!(counts.iter().sum::<usize>(), 32);
    assert!(
        counts.iter().all(|&c| c <= 16),
        "no node may own half the corpus at n=8: {counts:?}"
    );
    assert!(
        counts.iter().filter(|&&c| c > 0).count() >= 6,
        "at n=8 at least 6 of 8 nodes must own work: {counts:?}"
    );
}

proptest! {
    /// Consistent hashing's defining property, exactly: when a node
    /// leaves, only the keys it owned move; when a node joins, keys
    /// either stay put or move to the newcomer. No third-party churn.
    #[test]
    fn ring_remaps_minimally_on_join_and_leave(
        n in 2usize..7,
        leave in 0usize..7,
        key_halves in prop::collection::vec((0u64..=u64::MAX, 0u64..=u64::MAX), 1..64),
    ) {
        use rasengan::serve::{Ring, DEFAULT_VNODES};
        let keys: Vec<u128> = key_halves
            .into_iter()
            .map(|(hi, lo)| ((hi as u128) << 64) | lo as u128)
            .collect();
        let member = |i: usize| (format!("node-{i}"), format!("10.0.0.{i}:7878"));
        let members: Vec<(String, String)> = (0..n).map(member).collect();
        let ring = Ring::build(&members, DEFAULT_VNODES);

        // Leave: drop one member, keys owned by others must not move.
        let leave = leave % n;
        let rest: Vec<(String, String)> =
            members.iter().filter(|(id, _)| *id != format!("node-{leave}")).cloned().collect();
        let smaller = Ring::build(&rest, DEFAULT_VNODES);
        for &key in &keys {
            let before = ring.owner_of(key).expect("owner").0.to_string();
            let after = smaller.owner_of(key).expect("owner").0.to_string();
            if before != format!("node-{leave}") {
                prop_assert_eq!(
                    &before, &after,
                    "key {:#x} moved off a surviving node on leave", key
                );
            } else {
                prop_assert_ne!(&after, &format!("node-{leave}"));
            }
        }

        // Join: add a fresh member, keys either stay or go to it.
        let mut grown = members.clone();
        grown.push(member(n));
        let bigger = Ring::build(&grown, DEFAULT_VNODES);
        for &key in &keys {
            let before = ring.owner_of(key).expect("owner").0.to_string();
            let after = bigger.owner_of(key).expect("owner").0.to_string();
            prop_assert!(
                after == before || after == format!("node-{n}"),
                "key {:#x} hopped between incumbents on join: {} -> {}", key, before, after
            );
        }

        // Build order never matters: the ring is a pure function of
        // the member set.
        let mut shuffled = grown.clone();
        shuffled.reverse();
        let same = Ring::build(&shuffled, DEFAULT_VNODES);
        for &key in &keys {
            prop_assert_eq!(bigger.owner_of(key), same.owner_of(key));
        }
    }
}
