//! Multi-node fabric integration suite (mirrors the CI fabric-smoke
//! job): in-process clusters joined by the consistent-hash ring, with
//! byte-identity asserted from every entry node, cross-node cache
//! reuse observed through the wire counters, and owner-death churn
//! driven end to end — suspect, dead, ring rebuild, recompute.
//!
//! Every assertion here holds at any `RASENGAN_THREADS` (CI runs the
//! suite at 1 and 4): the solver is bit-deterministic, so a forwarded
//! solve, a local fallback, and an in-process baseline all produce the
//! same `result` bytes.

use rasengan::core::Rasengan;
use rasengan::problems::io::parse_problem;
use rasengan::serve::{
    key_point, render_outcome, serve, stats, submit, FabricConfig, ReplyStatus, ServeConfig,
    ServerHandle, SolveRequest, DEFAULT_VNODES,
};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn instance_texts() -> Vec<(String, String)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples/instances");
    let mut instances: Vec<(String, String)> = std::fs::read_dir(&dir)
        .expect("examples/instances exists")
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            if path.extension()? != "problem" {
                return None;
            }
            let name = path.file_stem()?.to_string_lossy().into_owned();
            Some((name, std::fs::read_to_string(&path).ok()?))
        })
        .collect();
    instances.sort();
    assert!(
        instances.len() >= 5,
        "expected the committed example instances, found {}",
        instances.len()
    );
    instances
}

fn request_for(text: &str) -> SolveRequest {
    SolveRequest::new(text.to_string())
        .with_seed(11)
        .with_shots(128)
        .with_iterations(8)
}

/// The node id scheme every cluster here uses: `fab-n0`, `fab-n1`, …
fn node_id(i: usize) -> String {
    format!("fab-n{i}")
}

/// Spawns an `n`-node in-process cluster. Node `i` seeds its peer list
/// with every node bound before it; gossip closes the rest of the
/// mesh. Returns the handles once **every** node's member list has
/// converged to the real node ids (placeholder seed ids replaced), so
/// callers can compute ring ownership from `node_id(i)` deterministically.
fn spawn_cluster(
    n: usize,
    workers: usize,
    configure: impl Fn(FabricConfig) -> FabricConfig,
) -> Vec<ServerHandle> {
    let mut servers: Vec<ServerHandle> = Vec::new();
    for i in 0..n {
        let fabric = configure(
            FabricConfig::new(node_id(i))
                .with_seed(40 + i as u64)
                .with_heartbeat(Duration::from_millis(40))
                .with_peers(servers.iter().map(|s| s.addr().to_string()).collect()),
        );
        let server = serve(
            ServeConfig::default()
                .with_workers(workers)
                .with_fabric(fabric),
        )
        .expect("bind ephemeral port");
        servers.push(server);
    }
    wait_for_membership(&servers, (0..n).map(node_id).collect());
    servers
}

/// Polls each node's wire STATS until its fabric member list is
/// exactly `expected` ids, all alive. Converged membership means every
/// node owns the same ring, so ownership computed in the test matches
/// what the servers route on.
fn wait_for_membership(servers: &[ServerHandle], mut expected: Vec<String>) {
    expected.sort();
    let deadline = Instant::now() + Duration::from_secs(10);
    for server in servers {
        loop {
            let fabric = wire_fabric(server);
            let members = fabric
                .get("members")
                .and_then(|m| m.as_arr())
                .map(|m| m.to_vec());
            let mut ids: Vec<String> = members
                .unwrap_or_default()
                .iter()
                .filter(|m| m.get("state").and_then(|s| s.as_str()) == Some("alive"))
                .filter_map(|m| m.get("id").and_then(|s| s.as_str()).map(str::to_string))
                .collect();
            ids.sort();
            if ids == expected {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "membership did not converge on {}: have {ids:?}, want {expected:?}",
                server.addr()
            );
            std::thread::sleep(Duration::from_millis(15));
        }
    }
}

/// The `fabric` object from a node's wire STATS reply.
fn wire_fabric(server: &ServerHandle) -> rasengan::serve::Json {
    let reply = stats(server.addr()).expect("stats");
    assert_eq!(reply.status, ReplyStatus::Ok);
    reply
        .json("stats")
        .expect("stats section")
        .get("fabric")
        .expect("fabric stats present")
        .clone()
}

fn wire_counter(server: &ServerHandle, name: &str) -> i128 {
    wire_fabric(server)
        .get(name)
        .and_then(|v| v.as_i128())
        .unwrap_or_else(|| panic!("fabric counter {name} missing"))
}

/// The index of the node that owns `text`'s problem on a ring over
/// nodes `0..n` — computed test-side from the exported [`Ring`], which
/// the servers must agree with once membership has converged.
fn owner_index(servers: &[ServerHandle], text: &str) -> usize {
    let members: Vec<(String, String)> = servers
        .iter()
        .enumerate()
        .map(|(i, s)| (node_id(i), s.addr().to_string()))
        .collect();
    let ring = rasengan::serve::Ring::build(&members, DEFAULT_VNODES);
    let problem = parse_problem(text).expect("fixture parses");
    let (owner, _) = ring
        .owner_of(problem.fingerprint())
        .expect("non-empty ring");
    servers
        .iter()
        .enumerate()
        .position(|(i, _)| node_id(i) == owner)
        .expect("owner is a cluster member")
}

/// (a) Every committed fixture, submitted through a node that does NOT
/// own it, returns `result` bytes identical to an in-process solve —
/// the fabric's core determinism contract, valid at any thread count.
#[test]
fn every_fixture_is_byte_identical_from_a_non_owner() {
    let servers = spawn_cluster(2, 2, |f| f);
    for (name, text) in instance_texts() {
        let request = request_for(&text);
        let problem = parse_problem(&text).expect("fixture parses");
        let baseline = render_outcome(
            &Rasengan::new(request.config())
                .solve(&problem)
                .expect("in-process solve"),
        );
        let non_owner = 1 - owner_index(&servers, &text);
        let reply = submit(servers[non_owner].addr(), &request).expect("submit");
        assert_eq!(reply.status, ReplyStatus::Ok, "{name} failed via non-owner");
        assert_eq!(
            reply.section("result").expect("result section"),
            baseline,
            "{name}: non-owner entry must be byte-identical to the in-process solve"
        );
        // key_point is total — every fingerprint lands somewhere on
        // the ring — so routing never rejects a problem.
        let _ = key_point(problem.fingerprint());
    }
    // Routing actually crossed the wire: at least one fixture was
    // forwarded out of its entry node and into its owner.
    let forwarded: i128 = servers
        .iter()
        .map(|s| wire_counter(s, "forwards_out"))
        .sum();
    let received: i128 = servers.iter().map(|s| wire_counter(s, "forwards_in")).sum();
    assert!(forwarded >= 1, "non-owner entry must forward");
    assert_eq!(forwarded, received, "every forward out lands on an owner");
    for server in servers {
        server.shutdown();
    }
}

/// (b) A second submit through a *different* node reuses the cluster's
/// work rather than recomputing: the owner answers from its result
/// cache on the forward, and the forwarder's read-through copy serves
/// the third hit without touching the wire. Observed via the STATS
/// counters on each node.
#[test]
fn cross_node_resubmission_hits_remote_and_local_caches() {
    let servers = spawn_cluster(2, 2, |f| f);
    let (_, text) = instance_texts().into_iter().next().unwrap();
    let request = request_for(&text);
    let owner = owner_index(&servers, &text);
    let other = 1 - owner;

    // Seed the owner directly: a plain local solve, no forwarding.
    let first = submit(servers[owner].addr(), &request).expect("owner submit");
    assert_eq!(first.status, ReplyStatus::Ok);
    assert_eq!(wire_counter(&servers[owner], "forwards_out"), 0);

    // Non-owner entry: forwarded, and the owner answers from cache.
    let second = submit(servers[other].addr(), &request).expect("non-owner submit");
    assert_eq!(second.status, ReplyStatus::Ok);
    let service = second.json("service").expect("service section");
    assert_eq!(
        service.get("cache").and_then(|c| c.as_str()),
        Some("forward-hit"),
        "the owner must serve the forward from its result cache"
    );
    assert_eq!(
        service.get("owner").and_then(|o| o.as_str()),
        Some(node_id(owner).as_str()),
        "the reply must name the owning node"
    );
    assert_eq!(wire_counter(&servers[other], "forwards_out"), 1);
    assert_eq!(wire_counter(&servers[owner], "forwards_in"), 1);

    // Same entry again: the read-through copy answers locally.
    let third = submit(servers[other].addr(), &request).expect("remote-hit submit");
    assert_eq!(third.status, ReplyStatus::Ok);
    assert_eq!(
        third
            .json("service")
            .expect("service section")
            .get("cache")
            .and_then(|c| c.as_str()),
        Some("remote-hit"),
        "the forwarder must keep a read-through copy"
    );
    assert_eq!(wire_counter(&servers[other], "remote_hits"), 1);
    assert_eq!(
        wire_counter(&servers[other], "forwards_out"),
        1,
        "a remote hit must not touch the wire again"
    );

    // All three paths return the same bytes.
    let bytes: Vec<&str> = [&first, &second, &third]
        .iter()
        .map(|r| r.section("result").expect("result section"))
        .collect();
    assert_eq!(bytes[0], bytes[1]);
    assert_eq!(bytes[1], bytes[2]);
    for server in servers {
        server.shutdown();
    }
}

/// (c) Owner death: the cluster detects it (suspect → dead), rebuilds
/// the ring without the corpse, and keeps serving byte-identical
/// results throughout — first by local fallback while the death is
/// still undetected, then by re-routed ownership.
#[test]
fn owner_death_rebuilds_the_ring_and_results_stay_identical() {
    // Read-through is disabled so the post-death submits exercise
    // routing and recompute, not a warm forwarder cache.
    let mut servers = spawn_cluster(3, 2, |f| f.without_read_through());
    let (_, text) = instance_texts().into_iter().next().unwrap();
    let request = request_for(&text);
    let owner = owner_index(&servers, &text);
    let survivors: Vec<usize> = (0..3).filter(|i| *i != owner).collect();

    // Healthy cluster: a non-owner entry forwards to the owner.
    let before = submit(servers[survivors[0]].addr(), &request).expect("pre-death submit");
    assert_eq!(before.status, ReplyStatus::Ok);
    let baseline = before.section("result").expect("result").to_string();
    // Each node versions its own ring, so the rebuild check is
    // per-survivor against that survivor's own pre-death version.
    let ring_before: Vec<i128> = survivors
        .iter()
        .map(|&i| wire_counter(&servers[i], "ring_version"))
        .collect();

    // Kill the owner. `remove` keeps the survivors' relative order, so
    // `ring_before[k]` still belongs to `servers[k]`.
    let corpse = servers.remove(owner);
    corpse.shutdown();

    // Immediately after death the survivors still route to the corpse;
    // the forward fails and the entry node falls back to computing
    // locally — same bytes, and the dead peer is suspected on the spot.
    let during = submit(servers[0].addr(), &request).expect("fallback submit");
    assert_eq!(during.status, ReplyStatus::Ok);
    assert_eq!(
        during.section("result").expect("result"),
        baseline,
        "local fallback must be byte-identical"
    );

    // The gossip timers take it from there: suspect → dead → ring
    // rebuild on every survivor.
    let deadline = Instant::now() + Duration::from_secs(10);
    for (server, &before_version) in servers.iter().zip(&ring_before) {
        while wire_counter(server, "members_dead") < 1
            || wire_counter(server, "ring_version") <= before_version
        {
            assert!(
                Instant::now() < deadline,
                "owner death was not detected within 10s"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(
            wire_counter(server, "peer_suspect") >= 1,
            "death must pass through the suspect state"
        );
    }

    // Post-rebuild: both survivors answer, and the bytes still match.
    for server in &servers {
        let after = submit(server.addr(), &request).expect("post-rebuild submit");
        assert_eq!(after.status, ReplyStatus::Ok);
        assert_eq!(
            after.section("result").expect("result"),
            baseline,
            "post-rebuild result must be byte-identical"
        );
    }
    for server in servers {
        server.shutdown();
    }
}

/// (d) A peer list naming the node itself and repeating an address
/// collapses cleanly: one unique peer survives, and the node's own
/// advertise address never gossips to itself.
#[test]
fn self_and_duplicate_peers_dedupe() {
    let advertise = "127.0.0.1:45991";
    let fabric = FabricConfig::new("solo")
        .with_advertise(advertise)
        .with_heartbeat(Duration::from_millis(40))
        .with_peers(vec![
            advertise.to_string(),
            "127.0.0.1:45992".to_string(),
            "127.0.0.1:45992".to_string(),
            advertise.to_string(),
        ]);
    let server = serve(ServeConfig::default().with_workers(1).with_fabric(fabric))
        .expect("bind ephemeral port");
    let stats = wire_fabric(&server);
    let members = stats
        .get("members")
        .and_then(|m| m.as_arr())
        .map(|m| m.to_vec())
        .expect("members array");
    // Self plus exactly one deduped peer.
    assert_eq!(members.len(), 2, "members: {members:?}");
    let addrs: Vec<&str> = members
        .iter()
        .filter_map(|m| m.get("addr").and_then(|a| a.as_str()))
        .collect();
    assert!(addrs.contains(&advertise));
    assert!(addrs.contains(&"127.0.0.1:45992"));
    assert_eq!(
        stats.get("node_id").and_then(|v| v.as_str()),
        Some("solo"),
        "node id survives"
    );
    server.shutdown();
}
