//! Cross-backend validation: the sparse analytic transition application
//! and the dense simulation of the synthesized gate circuits must agree
//! amplitude-for-amplitude on full Rasengan chains.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rasengan::core::{problem_basis, Rasengan, RasenganConfig};
use rasengan::problems::registry::{benchmark, BenchmarkId};
use rasengan::qsim::sparse::label_from_bits;
use rasengan::qsim::synth::tau_circuit;
use rasengan::qsim::{Circuit, DenseState, SparseState, Transition};

/// Runs the same transition sequence on both backends and compares all
/// amplitudes.
fn assert_backends_agree(n: usize, seed_bits: &[i64], chain: &[(Vec<i64>, f64)]) {
    let mut sparse = SparseState::from_bits(seed_bits);
    let mut circuit = Circuit::new(n);
    for (u, t) in chain {
        sparse.apply_transition(&Transition::from_u(u), *t);
        circuit.extend(&tau_circuit(u, *t, n));
    }
    let mut dense = DenseState::basis_state(n, label_from_bits(seed_bits) as u64);
    dense.run(&circuit);

    for label in 0..(1u64 << n) {
        let d = dense.amplitude(label);
        let s = sparse.amplitude(label as u128);
        assert!(
            d.approx_eq(s, 1e-8),
            "amplitude mismatch at |{label:0n$b}⟩: dense {d:?} vs sparse {s:?}"
        );
    }
}

#[test]
fn paper_example_chain_agrees_across_backends() {
    assert_backends_agree(
        5,
        &[0, 0, 0, 1, 0],
        &[
            (vec![-1, 0, -1, 1, 0], 0.7),
            (vec![1, 0, 1, 0, 1], 0.4),
            (vec![-1, 1, 0, 0, 0], 1.1),
            (vec![-1, 0, -1, 1, 0], 0.2),
        ],
    );
}

#[test]
fn random_chains_agree_across_backends() {
    let mut rng = StdRng::seed_from_u64(77);
    for trial in 0..10 {
        let n = rng.gen_range(3..=7);
        // Random seed state.
        let seed_bits: Vec<i64> = (0..n).map(|_| rng.gen_range(0..2)).collect();
        // Random chain of ternary vectors.
        let chain: Vec<(Vec<i64>, f64)> = (0..rng.gen_range(2..6))
            .map(|_| {
                let mut u = vec![0i64; n];
                while u.iter().all(|&v| v == 0) {
                    for slot in u.iter_mut() {
                        *slot = rng.gen_range(-1..=1);
                    }
                }
                (u, rng.gen_range(-2.0..2.0))
            })
            .collect();
        assert_backends_agree(n, &seed_bits, &chain);
        let _ = trial;
    }
}

#[test]
fn compiled_benchmark_chain_agrees_across_backends() {
    // Take a real benchmark's pruned chain with trained-ish angles and
    // compare backends.
    let p = benchmark(BenchmarkId::parse("J1").unwrap());
    let prepared = Rasengan::new(RasenganConfig::default())
        .prepare(&p)
        .unwrap();
    let chain: Vec<(Vec<i64>, f64)> = prepared
        .chain
        .ops
        .iter()
        .enumerate()
        .map(|(i, op)| (op.u().to_vec(), 0.3 + 0.1 * i as f64))
        .collect();
    let seed_bits = p.initial_feasible().unwrap();
    assert_backends_agree(p.n_vars(), seed_bits, &chain);
}

#[test]
fn chocoq_mixer_commutes_with_constraints() {
    // Applying the Trotterized mixer to any feasible state keeps all
    // probability mass inside the feasible set (the commuting property
    // Choco-Q relies on).
    let p = benchmark(BenchmarkId::parse("S1").unwrap());
    let basis = problem_basis(&p).unwrap();
    let feasible = rasengan::problems::enumerate_feasible(&p);
    let mut state = SparseState::from_bits(p.initial_feasible().unwrap());
    for (i, u) in basis.iter().enumerate() {
        state.apply_transition(&Transition::from_u(u), 0.5 + 0.2 * i as f64);
    }
    for &label in state.distribution().keys() {
        let bits = rasengan::qsim::sparse::bits_from_label(label, p.n_vars());
        assert!(
            feasible.contains(&bits),
            "mixer leaked outside the feasible set: {bits:?}"
        );
    }
}
