//! Resilient-execution tests: fault injection, retry with escalated
//! shots, graceful chain degradation, and execution budgets.
//!
//! The fault plan is seed-derived and deterministic, so every scenario
//! here is reproducible — including across thread counts (covered in
//! `tests/determinism.rs`). The CI stress job re-runs this file over a
//! seed × thread matrix via `RASENGAN_FAULT_SEED` / `RASENGAN_THREADS`.

use rasengan::core::{
    BudgetKind, DegradeFallback, Rasengan, RasenganConfig, RasenganError, ResilienceConfig,
    ResilienceEvent, Stage,
};
use rasengan::problems::registry::{benchmark, BenchmarkId};
use rasengan::qsim::{FaultPlan, NoiseModel};

fn f1() -> rasengan::problems::Problem {
    benchmark(BenchmarkId::parse("F1").unwrap())
}

/// Seed for the fault plan; the CI stress matrix overrides it.
fn fault_seed() -> u64 {
    std::env::var("RASENGAN_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xFA17)
}

fn noisy_cfg(seed: u64) -> RasenganConfig {
    RasenganConfig::default()
        .with_seed(seed)
        .with_noise(NoiseModel::depolarizing(1e-3))
        .with_shots(128)
        .with_max_iterations(6)
}

#[test]
fn transient_kill_recovers_with_retry() {
    // Kill segment 1's first attempt only: the retry must recover and
    // the report must show both the fault and the successful retry.
    let plan = FaultPlan::new(fault_seed()).kill_segment(1, 1);
    let outcome = Rasengan::new(
        noisy_cfg(11).with_resilience(
            ResilienceConfig::default()
                .with_retry_budget(2)
                .with_fault_plan(plan),
        ),
    )
    .solve(&f1())
    .expect("a transient kill must be absorbed by the retry budget");

    assert_eq!(outcome.in_constraints_rate, 1.0);
    assert!(outcome.best.feasible);
    let report = &outcome.resilience;
    assert!(report.retries() > 0, "no retry recorded: {report:?}");
    assert!(report.recoveries() > 0, "no recovery recorded: {report:?}");
    assert_eq!(report.degradations(), 0);
    assert!(report.events.iter().any(|e| matches!(
        e,
        ResilienceEvent::Retry {
            segment: 1,
            recovered: true,
            ..
        }
    )));
    // Escalation doubles the segment budget on the first retry.
    assert!(report.events.iter().any(|e| matches!(
        e,
        ResilienceEvent::Retry {
            segment: 1,
            attempt: 1,
            shots: 256,
            ..
        }
    )));
}

#[test]
fn retry_time_is_a_subset_not_an_extra_stage() {
    // Stage accounting under retries: `retry_s` is wall-clock spent
    // *inside* retried attempts, i.e. a subset of `train_s`/`execute_s`.
    // A correct breakdown therefore satisfies both
    //   retry_s <= train_s + execute_s   (no double-billing), and
    //   stage_sum() ~= classical_s       (the disjoint stages cover the
    //                                     measured classical wall-clock).
    let plan = FaultPlan::new(fault_seed()).kill_segment(1, 1);
    let outcome = Rasengan::new(
        noisy_cfg(21).with_resilience(
            ResilienceConfig::default()
                .with_retry_budget(2)
                .with_fault_plan(plan),
        ),
    )
    .solve(&f1())
    .expect("a transient kill must be absorbed by the retry budget");

    let lat = &outcome.latency;
    let st = &lat.stages;
    assert!(
        st.retry_s > 0.0,
        "the killed attempt must bill retry time: {st:?}"
    );
    // Timer granularity and the instants captured just outside the
    // attempt loop mean the bounds need slack, but only a little.
    let eps = 0.05 + 0.25 * lat.classical_s;
    assert!(
        st.retry_s <= st.train_s + st.execute_s + eps,
        "retry_s exceeds the stages that contain it: {st:?}"
    );
    assert!(
        st.stage_sum() <= lat.classical_s + eps,
        "stage sum overshoots classical wall-clock: {st:?} vs {}",
        lat.classical_s
    );
    assert!(
        lat.classical_s - st.stage_sum() <= eps,
        "stage sum leaves classical wall-clock unaccounted: {st:?} vs {}",
        lat.classical_s
    );
}

#[test]
fn permanent_kill_exhausts_retries_and_degrades() {
    // Segment 1 dies on every attempt. With degradation armed the chain
    // must skip it — falling back to the previous segment's feasible
    // output — and still return a feasible answer.
    let plan = FaultPlan::new(fault_seed()).kill_segment(1, usize::MAX);
    let outcome = Rasengan::new(
        noisy_cfg(12).with_resilience(
            ResilienceConfig::default()
                .with_retry_budget(1)
                .with_degradation()
                .with_fault_plan(plan),
        ),
    )
    .solve(&f1())
    .expect("degradation must carry the chain past a dead segment");

    assert_eq!(outcome.in_constraints_rate, 1.0);
    assert!(outcome.best.feasible);
    let report = &outcome.resilience;
    assert!(report.degradations() > 0, "no degradation: {report:?}");
    assert!(report.events.iter().any(|e| matches!(
        e,
        ResilienceEvent::Degraded {
            segment: 1,
            attempts: 2,
            fallback: DegradeFallback::PreviousSegment,
        }
    )));
}

#[test]
fn permanent_kill_without_degradation_aborts() {
    let plan = FaultPlan::new(fault_seed()).kill_segment(1, usize::MAX);
    let err = Rasengan::new(
        noisy_cfg(13).with_resilience(
            ResilienceConfig::default()
                .with_retry_budget(1)
                .with_fault_plan(plan),
        ),
    )
    .solve(&f1())
    .unwrap_err();
    assert!(matches!(
        err,
        RasenganError::NoFeasibleOutput { segment: 1 }
    ));
}

#[test]
fn killed_seed_segment_degrades_to_seed() {
    let plan = FaultPlan::new(fault_seed()).kill_segment(0, usize::MAX);
    let outcome = Rasengan::new(
        noisy_cfg(14).with_resilience(
            ResilienceConfig::default()
                .with_degradation()
                .with_fault_plan(plan),
        ),
    )
    .solve(&f1())
    .unwrap();
    assert!(outcome.best.feasible);
    assert!(outcome.resilience.events.iter().any(|e| matches!(
        e,
        ResilienceEvent::Degraded {
            segment: 0,
            fallback: DegradeFallback::Seed,
            ..
        }
    )));
}

#[test]
fn ambient_faults_are_absorbed_and_reported() {
    // Ambient fault pressure on every channel at once: batch loss,
    // readout bursts, calibration drift. The recovery ladder must keep
    // the run alive and the report must show injected faults.
    let plan = FaultPlan::new(fault_seed())
        .with_shot_loss(0.3)
        .with_readout_burst(0.5, 0.2)
        .with_calibration_drift(0.5);
    let outcome = Rasengan::new(
        noisy_cfg(15).with_resilience(ResilienceConfig::recommended().with_fault_plan(plan)),
    )
    .solve(&f1())
    .expect("ambient faults with retries + degradation must not abort");
    assert_eq!(outcome.in_constraints_rate, 1.0);
    assert!(outcome.best.feasible);
    assert!(
        outcome.resilience.faults_injected() > 0,
        "plan injected nothing: {:?}",
        outcome.resilience
    );
}

#[test]
fn corrupted_params_are_sanitized() {
    // Corrupt optimizer parameters on every evaluation; the executor
    // must repair them (recorded as ParamsSanitized) instead of
    // crashing or poisoning the run.
    let plan = FaultPlan::new(fault_seed()).with_param_corruption(1.0);
    let outcome = Rasengan::new(
        RasenganConfig::default()
            .with_seed(16)
            .with_shots(128)
            .with_max_iterations(6)
            .with_resilience(ResilienceConfig::default().with_fault_plan(plan)),
    )
    .solve(&f1())
    .expect("corrupted parameters must be sanitized, not fatal");
    assert!(outcome.best.feasible);
    let report = &outcome.resilience;
    assert!(report
        .events
        .iter()
        .any(|e| matches!(e, ResilienceEvent::ParamsSanitized { repaired } if *repaired > 0)));
    assert!(report.faults_injected() > 0);
}

#[test]
fn shot_budget_aborts_without_degradation() {
    // A shot ceiling below one chain execution trips mid-chain; without
    // degradation that is a hard BudgetExceeded error.
    let err = Rasengan::new(
        noisy_cfg(17).with_resilience(ResilienceConfig::default().with_total_shots(100)),
    )
    .solve(&f1())
    .unwrap_err();
    match err {
        RasenganError::BudgetExceeded {
            stage,
            kind: BudgetKind::Shots { limit: 100 },
            partial,
        } => {
            assert_eq!(stage, Stage::Execute);
            // No training evaluation ever completed, so there is no
            // partial outcome to hand back.
            assert!(partial.is_none());
        }
        other => panic!("expected BudgetExceeded, got {other}"),
    }
}

#[test]
fn shot_budget_with_degradation_truncates_the_chain() {
    let outcome = Rasengan::new(
        noisy_cfg(18).with_resilience(
            ResilienceConfig::default()
                .with_total_shots(100)
                .with_degradation(),
        ),
    )
    .solve(&f1())
    .expect("degradation must turn a tripped budget into a truncated chain");
    assert!(outcome.best.feasible);
    assert!(outcome.resilience.budget_exhaustions() > 0);
    assert!(outcome.total_shots <= 100 + 128 * 4, "runaway shot spend");
}

#[test]
fn tripped_final_execution_returns_partial_outcome() {
    // Budget sized so training evaluations complete but the ceiling
    // trips during the final execution: the error must carry the best
    // partial outcome (from the last good training evaluation).
    let base = noisy_cfg(19);
    let probe = Rasengan::new(base.clone()).solve(&f1()).unwrap();
    let one_eval = probe.total_shots / (probe.evaluations + 1);
    let limit = probe.total_shots - one_eval / 2;
    let err =
        Rasengan::new(base.with_resilience(ResilienceConfig::default().with_total_shots(limit)))
            .solve(&f1())
            .unwrap_err();
    match err {
        RasenganError::BudgetExceeded { partial, .. } => {
            let partial = partial.expect("training succeeded, partial must exist");
            assert!(partial.best.feasible);
            assert!(!partial.resilience.is_clean());
        }
        other => panic!("expected BudgetExceeded, got {other}"),
    }
}

#[test]
fn heavy_noise_abort_becomes_completion_with_resilience() {
    // Acceptance scenario: the exact configuration that
    // `heavy_noise_failure_mode_is_reported` (end_to_end.rs) shows
    // aborting with NoFeasibleOutput must complete once retries and
    // degradation are armed — with the whole story in the report.
    let p = benchmark(BenchmarkId::parse("K2").unwrap());
    let mut plain_failures = 0;
    let mut rescued = 0;
    for seed in 0..5u64 {
        let cfg = RasenganConfig::default()
            .with_seed(seed)
            .with_noise(NoiseModel::depolarizing(0.2).with_amplitude_damping(0.3))
            .with_shots(32)
            .with_max_iterations(3);
        let plain_failed = matches!(
            Rasengan::new(cfg.clone()).solve(&p),
            Err(RasenganError::NoFeasibleOutput { .. })
        );
        if !plain_failed {
            continue;
        }
        plain_failures += 1;
        let outcome = Rasengan::new(cfg.with_resilience(ResilienceConfig::recommended()))
            .solve(&p)
            .expect("recommended resilience must complete where plain solve aborts");
        assert!(outcome.best.feasible);
        assert_eq!(outcome.in_constraints_rate, 1.0);
        assert!(
            !outcome.resilience.is_clean(),
            "a rescued run must have a non-empty report"
        );
        rescued += 1;
    }
    assert!(plain_failures > 0, "failure mode never triggered");
    assert_eq!(rescued, plain_failures);
}

#[test]
fn multistart_aggregates_failures() {
    // Every start dies under a permanent kill (no degradation): the
    // aggregated error must carry each start's failure.
    let plan = FaultPlan::new(fault_seed()).kill_segment(0, usize::MAX);
    let err = Rasengan::new(
        noisy_cfg(20).with_resilience(ResilienceConfig::default().with_fault_plan(plan)),
    )
    .solve_multistart(&f1(), 3)
    .unwrap_err();
    match err {
        RasenganError::AllStartsFailed { n_starts, failures } => {
            assert_eq!(n_starts, 3);
            assert_eq!(failures.len(), 3);
            assert!(failures
                .iter()
                .all(|(_, e)| matches!(e, RasenganError::NoFeasibleOutput { .. })));
            // `source()` chains to the first underlying failure.
            use std::error::Error;
            let err = RasenganError::AllStartsFailed { n_starts, failures };
            assert!(err.source().is_some());
        }
        other => panic!("expected AllStartsFailed, got {other}"),
    }
}
