//! Integration tests for the problem-ingestion subsystem: QUBO/LP text
//! shipped to the solve service with a `format` header must produce
//! `result` sections byte-identical to solving the lowered [`Problem`]
//! in process — the acceptance criterion that the wire-level front end
//! and the library front end are the same code path.

use rasengan::core::{Rasengan, RasenganConfig};
use rasengan::problems::ingest::{parse_as, write_as, Format};
use rasengan::problems::registry::{benchmark, BenchmarkId};
use rasengan::problems::Problem;
use rasengan::serve::{render_outcome, serve, submit, ReplyStatus, ServeConfig, SolveRequest};

/// Solves `problem` in process with the service's solver defaults and
/// returns the rendered outcome bytes.
fn local_solve_bytes(problem: &Problem, seed: u64) -> String {
    let cfg = RasenganConfig::default()
        .with_seed(seed)
        .with_shots(256)
        .with_max_iterations(12);
    let outcome = Rasengan::new(cfg).solve(problem).unwrap();
    render_outcome(&outcome)
}

/// Submits `text` under `format` and asserts the served result is
/// byte-identical to the in-process solve of the lowered problem.
fn assert_served_matches_lowered(text: &str, format: Format, seed: u64) {
    let lowered = parse_as(format, text).expect("fixture must lower");
    let local = local_solve_bytes(&lowered, seed);

    let server = serve(ServeConfig::default()).unwrap();
    let request = SolveRequest::new(text.to_string())
        .with_format(format)
        .with_seed(seed)
        .with_shots(256)
        .with_iterations(12);
    let reply = submit(server.addr(), &request).unwrap();
    assert_eq!(reply.status, ReplyStatus::Ok, "format={format}");
    assert_eq!(
        reply.section("result").unwrap(),
        local,
        "served {format} ingest must be byte-identical to the in-process solve"
    );
    server.shutdown();
}

fn fixture(name: &str) -> String {
    let path = format!("{}/examples/instances/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

#[test]
fn served_qubo_matches_in_process_solve_of_lowered_problem() {
    // Sparse export of a registry instance, ingested without recovery:
    // an unconstrained quadratic the solver still handles end to end.
    let text = write_as(Format::Qubo, &benchmark(BenchmarkId::parse("K1").unwrap())).unwrap();
    assert_served_matches_lowered(&text, Format::Qubo, 5);
}

#[test]
fn served_qubo_recover_matches_in_process_solve() {
    // The same export with penalty recovery: the lowered problem gets
    // its equality rows back before solving.
    let text = write_as(Format::Qubo, &benchmark(BenchmarkId::parse("K1").unwrap())).unwrap();
    assert_served_matches_lowered(&text, Format::QuboRecover, 5);
}

#[test]
fn served_dense_qubo_fixture_matches_in_process_solve() {
    assert_served_matches_lowered(&fixture("dense4.qubo"), Format::Qubo, 11);
}

#[test]
fn served_lp_fixtures_match_in_process_solve() {
    // One equality-only export and one hand-written file with both
    // inequality directions (slack columns materialized on ingestion).
    let exported = write_as(Format::Lp, &benchmark(BenchmarkId::parse("B1").unwrap())).unwrap();
    assert_served_matches_lowered(&exported, Format::Lp, 7);
    assert_served_matches_lowered(&fixture("knapsack.lp"), Format::Lp, 7);
}

#[test]
fn served_native_fixture_matches_in_process_solve() {
    // The committed native fixtures stay in lockstep with the registry
    // and ride the same code path as the explicit-format requests.
    let text = fixture("M1.problem");
    let lowered = parse_as(Format::Native, &text).unwrap();
    assert_eq!(
        lowered.fingerprint(),
        benchmark(BenchmarkId::parse("M1").unwrap()).fingerprint(),
        "committed M1.problem drifted from the registry"
    );
    assert_served_matches_lowered(&text, Format::Native, 3);
}

#[test]
fn qubo_and_lp_fixtures_round_trip_from_disk() {
    // Every committed text fixture parses under its extension's format
    // and survives a write→parse trip with its fingerprint intact.
    for (name, recover) in [
        ("K1.qubo", true),
        ("dense4.qubo", false),
        ("B1.lp", false),
        ("knapsack.lp", false),
    ] {
        let format = match (Format::from_path(name), recover) {
            (Format::Qubo, true) => Format::QuboRecover,
            (f, _) => f,
        };
        let p = parse_as(format, &fixture(name)).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(p.n_vars() > 0, "{name} lowered to an empty problem");
        // Recovery-lowered problems re-export through the penalty fold,
        // everything else through its own writer.
        let rewritten = match format {
            Format::QuboRecover => write_as(Format::Qubo, &p).unwrap(),
            f => write_as(f, &p).unwrap(),
        };
        let q = parse_as(format, &rewritten).unwrap_or_else(|e| panic!("{name} rewrite: {e}"));
        assert_eq!(
            q.fingerprint(),
            p.fingerprint(),
            "{name}: fingerprint must survive write→parse"
        );
    }
}

#[test]
fn registry_native_fixtures_match_their_benchmarks() {
    // The original five seed fixtures plus the two added for the new
    // domains: all must lower to exactly their registry instance.
    for name in ["F1", "G1", "J1", "K1", "S1", "M1", "B1"] {
        let text = fixture(&format!("{name}.problem"));
        let p = parse_as(Format::Native, &text).unwrap();
        let id = BenchmarkId::parse(name).unwrap();
        assert_eq!(
            p.fingerprint(),
            benchmark(id).fingerprint(),
            "{name}.problem drifted from the registry instance"
        );
    }
}
