//! Integration tests of the `rasengan` CLI binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rasengan"))
}

#[test]
fn list_shows_all_benchmarks() {
    let out = cli().arg("list").output().expect("cli runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for id in ["F1", "K4", "J2", "S3", "G4", "M2", "B1", "P4"] {
        assert!(text.contains(id), "missing {id} in listing");
    }
    // Header + 32 rows.
    assert_eq!(text.lines().count(), 33);
}

#[test]
fn solve_reports_metrics() {
    let out = cli()
        .args(["solve", "-b", "J1", "-i", "40", "--seed", "3"])
        .output()
        .expect("cli runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ARG"));
    assert!(text.contains("feasible      : true"));
}

#[test]
fn solve_with_baseline_algorithm() {
    let out = cli()
        .args(["solve", "-b", "F1", "-a", "gas", "-i", "40"])
        .output()
        .expect("cli runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("objective"));
}

#[test]
fn inspect_shows_chain() {
    let out = cli()
        .args(["inspect", "-b", "S1"])
        .output()
        .expect("cli runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("basis size"));
    assert!(text.contains("τ_0"));
}

#[test]
fn export_emits_qasm() {
    let out = cli()
        .args(["export", "-b", "F1"])
        .output()
        .expect("cli runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("OPENQASM 3.0;"));
    assert!(text.contains("measure"));
}

#[test]
fn save_and_load_roundtrip() {
    let path = std::env::temp_dir().join("rasengan-cli-roundtrip.problem");
    let out = cli()
        .args(["save", "-b", "S1", "-o", path.to_str().unwrap()])
        .output()
        .expect("cli runs");
    assert!(out.status.success());
    let out = cli()
        .args(["solve", "-f", path.to_str().unwrap(), "-i", "30"])
        .output()
        .expect("cli runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("feasible      : true"));
}

#[test]
fn unknown_benchmark_fails_cleanly() {
    let out = cli()
        .args(["solve", "-b", "Z9"])
        .output()
        .expect("cli runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown benchmark"));
}

#[test]
fn unknown_flag_fails_cleanly() {
    let out = cli()
        .args(["solve", "--frobnicate"])
        .output()
        .expect("cli runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));
}

#[test]
fn missing_command_prints_usage() {
    let out = cli().output().expect("cli runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}
