//! Integration tests for the deployability extensions: OpenQASM export
//! of compiled Rasengan segments, and M3-style readout mitigation
//! composed with purification.

use rasengan::core::{Rasengan, RasenganConfig};
use rasengan::problems::registry::{benchmark, BenchmarkId};
use rasengan::qsim::mitigation::{mitigate_readout, ReadoutModel};
use rasengan::qsim::qasm::{qasm_stats, to_qasm3};
use rasengan::qsim::{Circuit, NoiseModel};
use std::collections::BTreeMap;

#[test]
fn compiled_segments_export_to_qasm() {
    let p = benchmark(BenchmarkId::parse("F1").unwrap());
    let prepared = Rasengan::new(RasenganConfig::default())
        .prepare(&p)
        .unwrap();
    // Export each segment as its own deployable program.
    for range in &prepared.plan.segments {
        let mut circuit = Circuit::new(p.n_vars());
        for (i, op) in prepared.chain.ops[range.clone()].iter().enumerate() {
            circuit.extend(&op.circuit(0.3 + 0.1 * i as f64, p.n_vars()));
        }
        let text = to_qasm3(&circuit);
        let stats = qasm_stats(&text);
        assert_eq!(stats.qubits, p.n_vars());
        assert!(stats.gates > 0, "segment exported empty");
        assert!(text.contains("c = measure q;"));
    }
}

#[test]
fn qasm_export_of_every_benchmark_head_segment() {
    for name in ["F1", "K1", "J1", "S1", "G1"] {
        let p = benchmark(BenchmarkId::parse(name).unwrap());
        let prepared = Rasengan::new(RasenganConfig::default())
            .prepare(&p)
            .unwrap();
        let op = &prepared.chain.ops[0];
        let text = to_qasm3(&op.circuit(0.5, p.n_vars()));
        assert!(
            qasm_stats(&text).gates > 0,
            "{name}: first τ exported without gates"
        );
    }
}

#[test]
fn mitigation_then_purification_recovers_from_readout_noise() {
    // A distribution corrupted by pure readout error: mitigation should
    // move most of the spilled mass back before purification prunes the
    // remainder.
    let p = benchmark(BenchmarkId::parse("J1").unwrap());
    let feasible = rasengan::problems::enumerate_feasible(&p);
    let truth = rasengan::qsim::sparse::label_from_bits(&feasible[0]);

    // Analytic single-flip corruption at rate 0.06.
    let rate = 0.06;
    let n = p.n_vars();
    let mut measured: BTreeMap<u128, f64> = BTreeMap::new();
    let stay = (1.0f64 - rate).powi(n as i32);
    measured.insert(truth, stay);
    for q in 0..n {
        let flipped = truth ^ (1 << q);
        measured.insert(flipped, rate * (1.0 - rate).powi(n as i32 - 1));
    }
    let total: f64 = measured.values().sum();
    for v in measured.values_mut() {
        *v /= total;
    }

    let fixed = mitigate_readout(&measured, n, ReadoutModel::new(rate));
    assert!(
        fixed[&truth] > measured[&truth],
        "mitigation must concentrate mass back on the truth"
    );
    assert!(fixed[&truth] > 0.98, "mitigated mass {}", fixed[&truth]);
}

#[test]
fn solver_with_mitigation_handles_pure_readout_noise() {
    let p = benchmark(BenchmarkId::parse("F1").unwrap());
    let cfg = RasenganConfig::default()
        .with_seed(4)
        .with_noise(NoiseModel::ibm_like(0.0, 0.0, 0.04))
        .with_shots(1024)
        .with_max_iterations(25)
        .with_readout_mitigation();
    let outcome = Rasengan::new(cfg).solve(&p).unwrap();
    assert_eq!(outcome.in_constraints_rate, 1.0);
    assert!(outcome.best.feasible);
    assert!(outcome.arg < 2.0, "readout-only noise should stay solvable");
}

#[test]
fn fidelity_budget_shrinks_segments_on_noisier_devices() {
    use rasengan::qsim::Device;
    let p = benchmark(BenchmarkId::parse("S3").unwrap());
    let kyiv = RasenganConfig::default().with_fidelity_budget(&Device::ibm_kyiv(), 0.5);
    let brisbane = RasenganConfig::default().with_fidelity_budget(&Device::ibm_brisbane(), 0.5);
    // Kyiv is noisier → smaller budget → at least as many segments.
    let seg_kyiv = Rasengan::new(kyiv).prepare(&p).unwrap().stats.n_segments;
    let seg_brisbane = Rasengan::new(brisbane)
        .prepare(&p)
        .unwrap()
        .stats
        .n_segments;
    assert!(seg_kyiv >= seg_brisbane);
}
